//! # emvolt-ga
//!
//! The genetic-algorithm optimization framework of §3: tournament
//! selection, one-point crossover, per-gene mutation and elitism over a
//! population of instruction-sequence individuals, driven by an arbitrary
//! (typically noisy) fitness function such as measured EM amplitude.
//!
//! The engine is generic: [`Representation`] supplies the genome
//! operators and the fitness closure the objective.
//! [`KernelRepresentation`] binds the engine to [`emvolt_isa`]
//! instruction pools.
//!
//! # Examples
//!
//! Maximize the number of short-latency integer instructions in a kernel
//! (a toy fitness):
//!
//! ```
//! use emvolt_ga::{GaConfig, GaEngine, KernelRepresentation};
//! use emvolt_isa::{InstructionPool, Isa, OpClass};
//!
//! let pool = InstructionPool::default_for(Isa::ArmV8);
//! let repr = KernelRepresentation::new(pool, 20);
//! let config = GaConfig { generations: 15, population: 20, ..GaConfig::default() };
//! let mut engine = GaEngine::new(repr, config);
//! let result = engine.run(
//!     |kernel| kernel.class_fraction(OpClass::IntShort),
//!     |_stats| {},
//! );
//! assert!(result.best_fitness > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

mod kernel_repr;

pub use kernel_repr::KernelRepresentation;

/// Genome operators for a particular solution representation.
pub trait Representation {
    /// The genome type evolved by the engine.
    type Genome: Clone;

    /// Samples a random genome (seed population).
    fn random(&self, rng: &mut StdRng) -> Self::Genome;

    /// One-point crossover producing two children.
    fn crossover(
        &self,
        a: &Self::Genome,
        b: &Self::Genome,
        rng: &mut StdRng,
    ) -> (Self::Genome, Self::Genome);

    /// Mutates a genome in place; `rate` is the per-gene probability.
    fn mutate(&self, genome: &mut Self::Genome, rate: f64, rng: &mut StdRng);
}

/// GA engine configuration.
///
/// Defaults follow the paper: population 50, 60 generations, tournament
/// selection, one-point crossover, 2–4% mutation rate (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament_k: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Number of top individuals copied unchanged into the next
    /// generation.
    pub elitism: usize,
    /// RNG seed: runs are fully reproducible.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population: 50,
            generations: 60,
            tournament_k: 3,
            mutation_rate: 0.03,
            elitism: 2,
            seed: 0xE110_CAFE,
        }
    }
}

/// Statistics for one completed generation.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationStats {
    /// Generation index, starting at 0.
    pub index: usize,
    /// Best fitness in this generation.
    pub best_fitness: f64,
    /// Mean fitness of the generation.
    pub mean_fitness: f64,
    /// Best fitness seen in any generation so far.
    pub best_so_far: f64,
}

/// Final result of a GA run.
#[derive(Debug, Clone)]
pub struct GaResult<G> {
    /// The best genome found across all generations.
    pub best: G,
    /// Its fitness.
    pub best_fitness: f64,
    /// Per-generation statistics.
    pub history: Vec<GenerationStats>,
    /// The best genome of each generation (for per-generation re-runs,
    /// as the paper does when re-measuring droop per generation).
    pub generation_best: Vec<G>,
}

/// The GA engine: owns the representation and configuration.
#[derive(Debug)]
pub struct GaEngine<R: Representation> {
    repr: R,
    config: GaConfig,
    telemetry: emvolt_obs::Telemetry,
}

impl<R: Representation> GaEngine<R> {
    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (population < 2, zero
    /// tournament, elitism >= population).
    pub fn new(repr: R, config: GaConfig) -> Self {
        assert!(config.population >= 2, "population must be at least 2");
        assert!(config.tournament_k >= 1, "tournament size must be >= 1");
        assert!(
            config.elitism < config.population,
            "elitism must leave room for offspring"
        );
        GaEngine {
            repr,
            config,
            telemetry: emvolt_obs::Telemetry::noop(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Attaches a telemetry handle; the engine then charges the
    /// evaluation and generation counters as it runs. Counter updates
    /// are order-independent atomics, so this is safe for batch runs at
    /// any thread count. The default handle is inert.
    pub fn set_telemetry(&mut self, telemetry: emvolt_obs::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Runs the GA to completion.
    ///
    /// `fitness` is called once per individual per generation (it may be
    /// noisy — the engine re-evaluates elites each generation rather than
    /// caching, matching how a physical measurement behaves).
    /// `on_generation` observes each generation's statistics.
    ///
    /// Evaluation is strictly serial in population order; stateful
    /// (`FnMut`) fitness closures — e.g. one drawing noise from its own
    /// RNG — behave exactly as in prior releases. For thread-safe fitness
    /// functions, [`GaEngine::run_batch`] evaluates each generation as a
    /// batch instead.
    pub fn run<F, C>(&mut self, mut fitness: F, on_generation: C) -> GaResult<R::Genome>
    where
        F: FnMut(&R::Genome) -> f64,
        C: FnMut(&GenerationStats),
    {
        self.run_inner(
            |population, _generation| population.iter().map(&mut fitness).collect(),
            on_generation,
        )
    }

    /// Runs the GA evaluating each generation as a batch across `threads`
    /// worker threads (via [`evaluate_parallel`]).
    ///
    /// Each individual's evaluation receives an [`EvalContext`] carrying a
    /// seed derived from `(config.seed, generation, index)` — not from any
    /// shared mutable RNG — so the full run (scores, history, evolution
    /// path) is bit-identical for every `threads` value, including 1.
    /// `threads <= 1` skips thread spawning entirely.
    pub fn run_batch<F, C>(
        &mut self,
        fitness: &F,
        threads: usize,
        on_generation: C,
    ) -> GaResult<R::Genome>
    where
        R::Genome: Sync,
        F: BatchFitness<R::Genome>,
        C: FnMut(&GenerationStats),
    {
        let campaign_seed = self.config.seed;
        self.run_inner(
            |population, generation| {
                if threads <= 1 {
                    population
                        .iter()
                        .enumerate()
                        .map(|(index, genome)| {
                            fitness.evaluate(
                                genome,
                                EvalContext::new(campaign_seed, generation, index),
                            )
                        })
                        .collect()
                } else {
                    let indexed: Vec<(usize, &R::Genome)> = population.iter().enumerate().collect();
                    evaluate_parallel(
                        &indexed,
                        |&(index, genome)| {
                            fitness.evaluate(
                                genome,
                                EvalContext::new(campaign_seed, generation, index),
                            )
                        },
                        threads,
                    )
                }
            },
            on_generation,
        )
    }

    /// Runs the GA evaluating each generation in lane groups of `lanes`
    /// individuals, dispatching whole groups across `threads` worker
    /// threads — the entry point for batched (SIMD-style lane-major)
    /// fitness pipelines.
    ///
    /// Each group receives the same `(config.seed, generation, index)`-
    /// derived [`EvalContext`]s that [`GaEngine::run_batch`] would hand
    /// the individuals one at a time, and groups are formed by contiguous
    /// population order regardless of thread count. A [`LaneFitness`]
    /// whose lane `l` result depends only on `(genomes[l], ctxs[l])` —
    /// the contract the batched measurement chain satisfies bit-for-bit —
    /// therefore yields runs that are bit-identical at any
    /// `(threads, lanes)` combination, including `(1, 1)`.
    ///
    /// `lanes == 0` is treated as 1; `threads <= 1` skips thread spawning.
    pub fn run_batch_lanes<F, C>(
        &mut self,
        fitness: &F,
        threads: usize,
        lanes: usize,
        on_generation: C,
    ) -> GaResult<R::Genome>
    where
        R::Genome: Sync,
        F: LaneFitness<R::Genome>,
        C: FnMut(&GenerationStats),
    {
        let campaign_seed = self.config.seed;
        let lanes = lanes.max(1);
        self.run_inner(
            |population, generation| {
                let groups: Vec<(usize, &[R::Genome])> = population
                    .chunks(lanes)
                    .enumerate()
                    .map(|(gi, chunk)| (gi * lanes, chunk))
                    .collect();
                let eval_group = |&(start, chunk): &(usize, &[R::Genome])| -> Vec<f64> {
                    let genomes: Vec<&R::Genome> = chunk.iter().collect();
                    let ctxs: Vec<EvalContext> = (0..chunk.len())
                        .map(|l| EvalContext::new(campaign_seed, generation, start + l))
                        .collect();
                    let scores = fitness.evaluate_lanes(&genomes, &ctxs);
                    assert_eq!(
                        scores.len(),
                        chunk.len(),
                        "lane fitness must score every lane of its group"
                    );
                    scores
                };
                let grouped: Vec<Vec<f64>> = if threads <= 1 {
                    groups.iter().map(eval_group).collect()
                } else {
                    map_parallel(&groups, eval_group, threads)
                };
                grouped.into_iter().flatten().collect()
            },
            on_generation,
        )
    }

    /// The generation loop shared by [`GaEngine::run`] and
    /// [`GaEngine::run_batch`]: `evaluate` scores a whole generation,
    /// everything else (selection, crossover, mutation, elitism) is
    /// serial and driven by the engine RNG, held in a [`GaState`].
    fn run_inner<E, C>(&mut self, mut evaluate: E, mut on_generation: C) -> GaResult<R::Genome>
    where
        E: FnMut(&[R::Genome], usize) -> Vec<f64>,
        C: FnMut(&GenerationStats),
    {
        let mut state = GaState::new(&self.repr, &self.config);
        while !state.is_done(&self.config) {
            let scores: Vec<f64> = evaluate(&state.population, state.generation);
            state.absorb_scores(
                &self.repr,
                &self.config,
                &self.telemetry,
                &scores,
                &mut on_generation,
            );
        }
        state.into_result()
    }
}

/// The complete mid-run state of a GA campaign: everything the breeding
/// loop carries between generations, with public fields so a checkpointed
/// campaign can serialize it mid-stream and resume bit-identically.
///
/// [`GaEngine::run`]-family methods are thin loops over this state:
/// construct with [`GaState::new`], score `population` externally, feed
/// the scores to [`GaState::absorb_scores`] until [`GaState::is_done`],
/// then take the result with [`GaState::into_result`].
#[derive(Debug, Clone)]
pub struct GaState<G> {
    /// The engine RNG mid-stream: population init consumed from it first,
    /// then each generation's selection/crossover/mutation draws.
    pub rng: StdRng,
    /// The current generation's individuals, in population order.
    pub population: Vec<G>,
    /// Index of the generation `population` belongs to (0-based); equals
    /// `config.generations` once the run is complete.
    pub generation: usize,
    /// Best genome and fitness seen in any generation so far.
    pub best: Option<(G, f64)>,
    /// Statistics of every completed generation.
    pub history: Vec<GenerationStats>,
    /// The best genome of each completed generation.
    pub generation_best: Vec<G>,
}

impl<G: Clone> GaState<G> {
    /// Seeds the engine RNG and samples the initial population.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations, like [`GaEngine::new`].
    pub fn new<R: Representation<Genome = G>>(repr: &R, config: &GaConfig) -> Self {
        assert!(config.population >= 2, "population must be at least 2");
        assert!(config.tournament_k >= 1, "tournament size must be >= 1");
        assert!(
            config.elitism < config.population,
            "elitism must leave room for offspring"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let population: Vec<G> = (0..config.population)
            .map(|_| repr.random(&mut rng))
            .collect();
        GaState {
            rng,
            population,
            generation: 0,
            best: None,
            history: Vec::with_capacity(config.generations),
            generation_best: Vec::with_capacity(config.generations),
        }
    }

    /// Whether every configured generation has been absorbed.
    pub fn is_done(&self, config: &GaConfig) -> bool {
        self.generation >= config.generations
    }

    /// Absorbs one generation's scores: charges the evaluation counters,
    /// ranks the population, updates the running best, reports the
    /// generation's statistics to `observe`, records history, and (unless
    /// this was the final generation) breeds the next population from the
    /// engine RNG. Returns the generation's statistics.
    ///
    /// # Panics
    ///
    /// Panics unless `scores` has exactly one entry per individual.
    pub fn absorb_scores<R, C>(
        &mut self,
        repr: &R,
        config: &GaConfig,
        telemetry: &emvolt_obs::Telemetry,
        scores: &[f64],
        mut observe: C,
    ) -> GenerationStats
    where
        R: Representation<Genome = G>,
        C: FnMut(&GenerationStats),
    {
        assert_eq!(
            scores.len(),
            self.population.len(),
            "evaluator must score every individual"
        );
        telemetry.count(emvolt_obs::CounterId::Evaluations, scores.len() as u64);
        telemetry.count(emvolt_obs::CounterId::Generations, 1);

        // Rank indices by descending fitness.
        let mut order: Vec<usize> = (0..self.population.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

        let gen_best_idx = order[0];
        let gen_best_fit = scores[gen_best_idx];
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        if self.best.as_ref().is_none_or(|(_, f)| gen_best_fit > *f) {
            self.best = Some((self.population[gen_best_idx].clone(), gen_best_fit));
        }
        let stats = GenerationStats {
            index: self.generation,
            best_fitness: gen_best_fit,
            mean_fitness: mean,
            best_so_far: self.best.as_ref().map(|(_, f)| *f).expect("set above"),
        };
        observe(&stats);
        self.history.push(stats.clone());
        self.generation_best
            .push(self.population[gen_best_idx].clone());

        if self.generation + 1 < config.generations {
            // Next generation: elites + tournament/crossover/mutation.
            let mut next: Vec<G> = order[..config.elitism]
                .iter()
                .map(|&i| self.population[i].clone())
                .collect();
            while next.len() < config.population {
                let p1 = tournament(&self.population, scores, config.tournament_k, &mut self.rng);
                let p2 = tournament(&self.population, scores, config.tournament_k, &mut self.rng);
                let (mut c1, mut c2) = repr.crossover(p1, p2, &mut self.rng);
                repr.mutate(&mut c1, config.mutation_rate, &mut self.rng);
                repr.mutate(&mut c2, config.mutation_rate, &mut self.rng);
                next.push(c1);
                if next.len() < config.population {
                    next.push(c2);
                }
            }
            self.population = next;
        }
        self.generation += 1;
        stats
    }

    /// Consumes the state into the run's final result.
    ///
    /// # Panics
    ///
    /// Panics if no generation was ever absorbed.
    pub fn into_result(self) -> GaResult<G> {
        let (best, best_fitness) = self.best.expect("at least one generation ran");
        GaResult {
            best,
            best_fitness,
            history: self.history,
            generation_best: self.generation_best,
        }
    }
}

fn tournament<'a, G>(
    population: &'a [G],
    scores: &[f64],
    tournament_k: usize,
    rng: &mut StdRng,
) -> &'a G {
    let mut best_idx = rng.gen_range(0..population.len());
    for _ in 1..tournament_k {
        let idx = rng.gen_range(0..population.len());
        if scores[idx] > scores[best_idx] {
            best_idx = idx;
        }
    }
    &population[best_idx]
}

/// Per-individual evaluation context handed to a [`BatchFitness`].
///
/// The `seed` is a pure function of `(campaign seed, generation, index)`
/// (see [`derive_eval_seed`]), so any measurement noise drawn from it is
/// identical no matter which thread evaluates the individual or in what
/// order the batch is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalContext {
    /// Generation index, starting at 0.
    pub generation: usize,
    /// Index of the individual within its generation's population.
    pub index: usize,
    /// Seed for any stochastic part of this one evaluation.
    pub seed: u64,
}

impl EvalContext {
    /// Builds the context for individual `index` of `generation` under
    /// `campaign_seed`.
    pub fn new(campaign_seed: u64, generation: usize, index: usize) -> Self {
        EvalContext {
            generation,
            index,
            seed: derive_eval_seed(campaign_seed, generation, index),
        }
    }
}

/// A thread-safe fitness function evaluating one genome per call, used by
/// [`GaEngine::run_batch`].
///
/// Implemented for any `Fn(&G, EvalContext) -> f64 + Sync` closure.
/// Unlike the `FnMut` closure taken by [`GaEngine::run`], implementations
/// take `&self` and must draw any randomness from [`EvalContext::seed`]
/// rather than captured mutable state.
pub trait BatchFitness<G>: Sync {
    /// Scores one genome.
    fn evaluate(&self, genome: &G, ctx: EvalContext) -> f64;
}

impl<G, F> BatchFitness<G> for F
where
    F: Fn(&G, EvalContext) -> f64 + Sync,
{
    fn evaluate(&self, genome: &G, ctx: EvalContext) -> f64 {
        self(genome, ctx)
    }
}

/// A thread-safe fitness function scoring a whole lane group per call,
/// used by [`GaEngine::run_batch_lanes`].
///
/// Implemented for any `Fn(&[&G], &[EvalContext]) -> Vec<f64> + Sync`
/// closure. The engine's determinism contract requires lane `l`'s score
/// to depend only on `(genomes[l], ctxs[l])` — batching may amortize the
/// physics across lanes, but must not couple their results.
pub trait LaneFitness<G>: Sync {
    /// Scores `genomes[l]` under `ctxs[l]` for every lane `l`, returning
    /// exactly one score per lane.
    fn evaluate_lanes(&self, genomes: &[&G], ctxs: &[EvalContext]) -> Vec<f64>;
}

impl<G, F> LaneFitness<G> for F
where
    F: Fn(&[&G], &[EvalContext]) -> Vec<f64> + Sync,
{
    fn evaluate_lanes(&self, genomes: &[&G], ctxs: &[EvalContext]) -> Vec<f64> {
        self(genomes, ctxs)
    }
}

/// Derives the evaluation seed for one individual from the campaign seed,
/// its generation and its population index.
///
/// SplitMix64-style finalization over the three inputs: well-distributed
/// even for adjacent `(generation, index)` pairs, and stable across
/// versions — recorded campaigns can be replayed exactly.
pub fn derive_eval_seed(campaign_seed: u64, generation: usize, index: usize) -> u64 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let g =
        mix(campaign_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(generation as u64 + 1)));
    mix(g.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)))
}

/// Helper for representations over `Vec<T>` genomes: one-point crossover.
pub fn one_point_crossover<T: Clone>(a: &[T], b: &[T], rng: &mut StdRng) -> (Vec<T>, Vec<T>) {
    let n = a.len().min(b.len());
    if n < 2 {
        return (a.to_vec(), b.to_vec());
    }
    let cut = rng.gen_range(1..n);
    let mut c1 = a[..cut].to_vec();
    c1.extend_from_slice(&b[cut..]);
    let mut c2 = b[..cut].to_vec();
    c2.extend_from_slice(&a[cut..]);
    (c1, c2)
}

/// Evaluates an entire population in parallel using scoped threads; used
/// when fitness evaluation is CPU-bound simulation rather than a shared
/// instrument session.
pub fn evaluate_parallel<G, F>(population: &[G], fitness: F, threads: usize) -> Vec<f64>
where
    G: Sync,
    F: Fn(&G) -> f64 + Sync,
{
    let threads = threads.max(1);
    let mut scores = vec![0.0f64; population.len()];
    let chunk = population.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|s| {
        for (genomes, out) in population.chunks(chunk).zip(scores.chunks_mut(chunk)) {
            let fitness = &fitness;
            s.spawn(move |_| {
                for (g, o) in genomes.iter().zip(out.iter_mut()) {
                    *o = fitness(g);
                }
            });
        }
    })
    .expect("worker thread panicked");
    scores
}

/// Applies `eval` to every item across `threads` scoped worker threads,
/// returning results in item order — the group-level analogue of
/// [`evaluate_parallel`] for evaluators producing per-group vectors.
/// Public so the step-engine driver can dispatch lane groups with exactly
/// the same chunking (and therefore the same thread schedule) as
/// [`GaEngine::run_batch_lanes`].
pub fn map_parallel<T, U, F>(items: &[T], eval: F, threads: usize) -> Vec<U>
where
    T: Sync,
    U: Send + Default,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.max(1);
    let mut out: Vec<U> = (0..items.len()).map(|_| U::default()).collect();
    let chunk = items.len().div_ceil(threads).max(1);
    crossbeam::thread::scope(|s| {
        for (its, outs) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            let eval = &eval;
            s.spawn(move |_| {
                for (t, o) in its.iter().zip(outs.iter_mut()) {
                    *o = eval(t);
                }
            });
        }
    })
    .expect("worker thread panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-string representation for engine tests.
    struct Bits(usize);

    impl Representation for Bits {
        type Genome = Vec<bool>;

        fn random(&self, rng: &mut StdRng) -> Vec<bool> {
            (0..self.0).map(|_| rng.gen_bool(0.5)).collect()
        }

        fn crossover(
            &self,
            a: &Vec<bool>,
            b: &Vec<bool>,
            rng: &mut StdRng,
        ) -> (Vec<bool>, Vec<bool>) {
            one_point_crossover(a, b, rng)
        }

        fn mutate(&self, genome: &mut Vec<bool>, rate: f64, rng: &mut StdRng) {
            for g in genome.iter_mut() {
                if rng.gen_bool(rate) {
                    *g = !*g;
                }
            }
        }
    }

    #[allow(clippy::ptr_arg)] // must match Representation::Genome = Vec<bool>
    fn ones(g: &Vec<bool>) -> f64 {
        g.iter().filter(|&&b| b).count() as f64
    }

    #[test]
    fn solves_onemax() {
        let mut engine = GaEngine::new(
            Bits(64),
            GaConfig {
                population: 40,
                generations: 60,
                ..GaConfig::default()
            },
        );
        let result = engine.run(ones, |_| {});
        assert!(
            result.best_fitness >= 60.0,
            "best {} of 64",
            result.best_fitness
        );
    }

    #[test]
    fn best_so_far_is_monotone() {
        let mut engine = GaEngine::new(Bits(32), GaConfig::default());
        let result = engine.run(ones, |_| {});
        for w in result.history.windows(2) {
            assert!(w[1].best_so_far >= w[0].best_so_far);
        }
        assert_eq!(result.history.len(), 60);
        assert_eq!(result.generation_best.len(), 60);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut engine = GaEngine::new(
                Bits(32),
                GaConfig {
                    generations: 10,
                    ..GaConfig::default()
                },
            );
            engine.run(ones, |_| {}).best
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noisy_fitness_still_improves() {
        let mut engine = GaEngine::new(
            Bits(64),
            GaConfig {
                population: 40,
                generations: 50,
                seed: 7,
                ..GaConfig::default()
            },
        );
        let mut noise_rng = StdRng::seed_from_u64(99);
        let result = engine.run(move |g| ones(g) + noise_rng.gen_range(-2.0..2.0), |_| {});
        assert!(result.best_fitness > 50.0);
    }

    #[test]
    fn callback_sees_every_generation() {
        let mut engine = GaEngine::new(
            Bits(16),
            GaConfig {
                generations: 12,
                ..GaConfig::default()
            },
        );
        let mut seen = Vec::new();
        let _ = engine.run(ones, |s| seen.push(s.index));
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn one_point_crossover_preserves_length_and_genes() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = vec![1u8; 10];
        let b = vec![2u8; 10];
        let (c1, c2) = one_point_crossover(&a, &b, &mut rng);
        assert_eq!(c1.len(), 10);
        assert_eq!(c2.len(), 10);
        let ones_total =
            c1.iter().filter(|&&x| x == 1).count() + c2.iter().filter(|&&x| x == 1).count();
        assert_eq!(ones_total, 10, "genes must be conserved");
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let population: Vec<Vec<bool>> = {
            let repr = Bits(24);
            let mut rng = StdRng::seed_from_u64(1);
            (0..37).map(|_| repr.random(&mut rng)).collect()
        };
        let serial: Vec<f64> = population.iter().map(ones).collect();
        let parallel = evaluate_parallel(&population, ones, 4);
        assert_eq!(serial, parallel);
    }

    /// A batch fitness with seed-derived noise, exercising the property
    /// the measurement pipeline depends on: noise comes from the context
    /// seed, not shared mutable state.
    fn noisy_batch(g: &Vec<bool>, ctx: EvalContext) -> f64 {
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        ones(g) + rng.gen_range(-0.5..0.5)
    }

    #[test]
    fn batch_run_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut engine = GaEngine::new(
                Bits(32),
                GaConfig {
                    population: 20,
                    generations: 15,
                    seed: 31,
                    ..GaConfig::default()
                },
            );
            let mut history = Vec::new();
            let result = engine.run_batch(&noisy_batch, threads, |s| history.push(s.clone()));
            (
                result.best,
                result.best_fitness,
                result.generation_best,
                history,
            )
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            assert_eq!(serial.0, parallel.0, "{threads} threads: best genome");
            assert_eq!(
                serial.1.to_bits(),
                parallel.1.to_bits(),
                "{threads} threads: best fitness"
            );
            assert_eq!(serial.2, parallel.2, "{threads} threads: generation bests");
            assert_eq!(serial.3, parallel.3, "{threads} threads: history");
        }
    }

    /// Lane groups must not change a single bit of the run: the same
    /// noisy fitness, evaluated through `run_batch_lanes` at any
    /// `(threads, lanes)` combination, reproduces the `run_batch`
    /// reference exactly.
    #[test]
    fn lane_run_is_bit_identical_across_threads_and_lanes() {
        let config = GaConfig {
            population: 21,
            generations: 12,
            seed: 77,
            ..GaConfig::default()
        };
        let lane_fitness = |genomes: &[&Vec<bool>], ctxs: &[EvalContext]| -> Vec<f64> {
            genomes
                .iter()
                .zip(ctxs)
                .map(|(g, &ctx)| noisy_batch(g, ctx))
                .collect()
        };
        let reference = {
            let mut engine = GaEngine::new(Bits(32), config.clone());
            let mut history = Vec::new();
            let r = engine.run_batch(&noisy_batch, 1, |s| history.push(s.clone()));
            (r.best, r.best_fitness, r.generation_best, history)
        };
        for threads in [1, 4] {
            for lanes in [1, 3, 8, 64] {
                let mut engine = GaEngine::new(Bits(32), config.clone());
                let mut history = Vec::new();
                let r = engine
                    .run_batch_lanes(&lane_fitness, threads, lanes, |s| history.push(s.clone()));
                assert_eq!(reference.0, r.best, "threads {threads}, lanes {lanes}");
                assert_eq!(
                    reference.1.to_bits(),
                    r.best_fitness.to_bits(),
                    "threads {threads}, lanes {lanes}"
                );
                assert_eq!(
                    reference.2, r.generation_best,
                    "threads {threads}, lanes {lanes}"
                );
                assert_eq!(reference.3, history, "threads {threads}, lanes {lanes}");
            }
        }
    }

    /// The lane evaluator sees contiguous population groups with the same
    /// `(generation, index)`-derived contexts the per-individual path
    /// uses, at every thread count.
    #[test]
    fn lane_groups_carry_the_per_individual_contexts() {
        use std::sync::Mutex as StdMutex;
        let config = GaConfig {
            population: 10,
            generations: 2,
            seed: 3,
            ..GaConfig::default()
        };
        for threads in [1, 4] {
            let seen: StdMutex<Vec<(usize, usize, u64)>> = StdMutex::new(Vec::new());
            let lane_fitness = |genomes: &[&Vec<bool>], ctxs: &[EvalContext]| -> Vec<f64> {
                assert!(ctxs.len() <= 4, "group wider than the lane width");
                let mut log = seen.lock().unwrap();
                for ctx in ctxs {
                    log.push((ctx.generation, ctx.index, ctx.seed));
                }
                genomes.iter().map(|g| ones(g)).collect()
            };
            let _ = GaEngine::new(Bits(16), config.clone()).run_batch_lanes(
                &lane_fitness,
                threads,
                4,
                |_| {},
            );
            let mut log = seen.into_inner().unwrap();
            log.sort_unstable();
            let mut expected: Vec<(usize, usize, u64)> = (0..2)
                .flat_map(|g| (0..10).map(move |i| (g, i, derive_eval_seed(3, g, i))))
                .collect();
            expected.sort_unstable();
            assert_eq!(log, expected, "threads {threads}");
        }
    }

    #[test]
    fn batch_run_with_pure_fitness_matches_serial_run() {
        let config = GaConfig {
            population: 24,
            generations: 12,
            seed: 5,
            ..GaConfig::default()
        };
        let serial = GaEngine::new(Bits(32), config.clone()).run(ones, |_| {});
        let batch = GaEngine::new(Bits(32), config).run_batch(
            &|g: &Vec<bool>, _ctx: EvalContext| ones(g),
            4,
            |_| {},
        );
        assert_eq!(serial.best, batch.best);
        assert_eq!(serial.best_fitness.to_bits(), batch.best_fitness.to_bits());
        assert_eq!(serial.history, batch.history);
    }

    #[test]
    fn eval_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for generation in 0..50 {
            for index in 0..50 {
                assert!(
                    seen.insert(derive_eval_seed(42, generation, index)),
                    "collision at ({generation}, {index})"
                );
            }
        }
        // Pinned value: recorded campaigns must replay identically across
        // releases.
        assert_eq!(derive_eval_seed(42, 3, 17), derive_eval_seed(42, 3, 17));
        assert_ne!(derive_eval_seed(42, 3, 17), derive_eval_seed(43, 3, 17));
        assert_ne!(derive_eval_seed(42, 3, 17), derive_eval_seed(42, 17, 3));
    }

    #[test]
    #[should_panic(expected = "population")]
    fn rejects_tiny_population() {
        let _ = GaEngine::new(
            Bits(8),
            GaConfig {
                population: 1,
                ..GaConfig::default()
            },
        );
    }
}
