//! Property-based tests for the GA engine.

use emvolt_ga::{one_point_crossover, GaConfig, GaEngine, KernelRepresentation, Representation};
use emvolt_isa::{InstructionPool, Isa};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One-point crossover conserves total gene multiset across the two
    /// children for equal-length parents.
    #[test]
    fn crossover_conserves_genes(
        a in prop::collection::vec(0u8..=255, 2..64),
        seed in any::<u64>(),
    ) {
        let b: Vec<u8> = a.iter().map(|x| x.wrapping_add(1)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let (c1, c2) = one_point_crossover(&a, &b, &mut rng);
        prop_assert_eq!(c1.len(), a.len());
        prop_assert_eq!(c2.len(), a.len());
        let mut original: Vec<u8> = a.iter().chain(&b).copied().collect();
        let mut children: Vec<u8> = c1.iter().chain(&c2).copied().collect();
        original.sort_unstable();
        children.sort_unstable();
        prop_assert_eq!(original, children);
    }

    /// The engine always reports exactly `generations` entries with a
    /// monotone best-so-far, for arbitrary valid configurations.
    #[test]
    fn engine_history_invariants(
        population in 2usize..24,
        generations in 1usize..16,
        tournament_k in 1usize..6,
        mutation_rate in 0.0..0.3f64,
        seed in any::<u64>(),
    ) {
        let elitism = 1usize.min(population - 1);
        let repr = KernelRepresentation::new(InstructionPool::default_for(Isa::ArmV8), 8);
        let mut engine = GaEngine::new(
            repr,
            GaConfig { population, generations, tournament_k, mutation_rate, elitism, seed },
        );
        let mut calls = 0usize;
        let result = engine.run(
            |k| {
                calls += 1;
                k.len() as f64 + (k.body()[0].mem_slot as f64) / 100.0
            },
            |_| {},
        );
        prop_assert_eq!(result.history.len(), generations);
        prop_assert_eq!(result.generation_best.len(), generations);
        prop_assert_eq!(calls, population * generations);
        for w in result.history.windows(2) {
            prop_assert!(w[1].best_so_far >= w[0].best_so_far);
        }
        for g in &result.history {
            prop_assert!(g.best_fitness >= g.mean_fitness - 1e-9);
        }
    }

    /// Kernel genomes never change length under crossover + mutation.
    #[test]
    fn kernel_genome_length_is_invariant(seed in any::<u64>(), rate in 0.0..1.0f64) {
        let repr = KernelRepresentation::new(InstructionPool::default_for(Isa::X86_64), 50);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = repr.random(&mut rng);
        let b = repr.random(&mut rng);
        let (mut c1, mut c2) = repr.crossover(&a, &b, &mut rng);
        repr.mutate(&mut c1, rate, &mut rng);
        repr.mutate(&mut c2, rate, &mut rng);
        prop_assert_eq!(c1.len(), 50);
        prop_assert_eq!(c2.len(), 50);
    }
}
