//! Fast Fourier Transform.
//!
//! An iterative radix-2 Cooley–Tukey FFT for power-of-two lengths, plus a
//! Bluestein chirp-z fallback so callers can transform records of any
//! length (instrument capture lengths are rarely powers of two).

use emvolt_circuit::Complex;

/// Computes the in-place forward DFT of `data` (any length).
///
/// Uses radix-2 Cooley–Tukey when `data.len()` is a power of two and the
/// Bluestein chirp-z transform otherwise.
pub fn fft(data: &mut Vec<Complex>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        fft_pow2(data, false);
    } else {
        *data = bluestein(data, false);
    }
}

/// Computes the inverse DFT of `data` (any length), including the `1/N`
/// normalization.
pub fn ifft(data: &mut Vec<Complex>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        fft_pow2(data, true);
    } else {
        *data = bluestein(data, true);
    }
    let scale = 1.0 / n as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

/// Forward DFT of a real signal; returns the full complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    fft(&mut data);
    data
}

/// Reusable state for repeated real-signal DFTs: the complex working
/// buffer plus the cached Bluestein kernel (chirp sequence and
/// pre-transformed convolution filter) for non-power-of-two lengths.
///
/// At steady state — same record length across calls, which is how the
/// measurement chain uses it — [`FftScratch::fft_real`] performs no heap
/// allocation and skips the kernel recomputation entirely. Results are
/// bit-identical to the free [`fft_real`] function.
#[derive(Debug, Clone, Default)]
pub struct FftScratch {
    data: Vec<Complex>,
    conv: Vec<Complex>,
    chirp: Vec<Complex>,
    bfft: Vec<Complex>,
    cached_n: usize,
    kernel_valid: bool,
}

impl FftScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward DFT of a real signal into the scratch's internal buffer,
    /// returning the full complex spectrum as a borrow. Bit-identical to
    /// [`fft_real`], without its per-call allocations.
    pub fn fft_real(&mut self, signal: &[f64]) -> &[Complex] {
        let n = signal.len();
        self.data.clear();
        self.data
            .extend(signal.iter().map(|&x| Complex::from_real(x)));
        if n <= 1 {
            return &self.data;
        }
        if n.is_power_of_two() {
            fft_pow2(&mut self.data, false);
        } else {
            if !self.kernel_valid || self.cached_n != n {
                bluestein_kernel(n, false, &mut self.chirp, &mut self.bfft);
                self.cached_n = n;
                self.kernel_valid = true;
            }
            bluestein_with_kernel(&mut self.data, &self.chirp, &self.bfft, &mut self.conv);
        }
        &self.data
    }
}

/// Radix-2 iterative FFT; `data.len()` must be a power of two.
fn fft_pow2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Precomputes the Bluestein kernel for length `n`: the chirp sequence
/// `w_k = exp(sign * -j*pi*k^2/n)` and the forward FFT of the
/// chirp-conjugate convolution filter. The kernel depends only on
/// `(n, inverse)`, so it is cacheable across transforms.
fn bluestein_kernel(n: usize, inverse: bool, chirp: &mut Vec<Complex>, bfft: &mut Vec<Complex>) {
    let sign = if inverse { 1.0 } else { -1.0 };
    let m = (2 * n - 1).next_power_of_two();

    // Chirp: we use the identity nk = (n^2 + k^2 - (k-n)^2) / 2 to turn
    // the DFT into a convolution.
    chirp.clear();
    chirp.extend((0..n).map(|k| {
        let angle = sign * std::f64::consts::PI * (k as f64) * (k as f64) / n as f64;
        Complex::from_polar(1.0, angle)
    }));

    bfft.clear();
    bfft.resize(m, Complex::ZERO);
    bfft[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        bfft[k] = c;
        bfft[m - k] = c;
    }
    fft_pow2(bfft, false);
}

/// Runs the Bluestein convolution in place over `data` using a
/// precomputed kernel and a reusable convolution buffer.
fn bluestein_with_kernel(
    data: &mut [Complex],
    chirp: &[Complex],
    bfft: &[Complex],
    conv: &mut Vec<Complex>,
) {
    let n = data.len();
    let m = bfft.len();
    conv.clear();
    conv.resize(m, Complex::ZERO);
    for k in 0..n {
        conv[k] = data[k] * chirp[k];
    }
    fft_pow2(conv, false);
    for (c, &b) in conv.iter_mut().zip(bfft.iter()) {
        *c *= b;
    }
    fft_pow2(conv, true);
    let scale = 1.0 / m as f64;
    for k in 0..n {
        data[k] = conv[k].scale(scale) * chirp[k];
    }
}

/// Bluestein chirp-z transform for arbitrary lengths.
fn bluestein(data: &[Complex], inverse: bool) -> Vec<Complex> {
    let mut out = data.to_vec();
    let (mut chirp, mut bfft, mut conv) = (Vec::new(), Vec::new(), Vec::new());
    bluestein_kernel(data.len(), inverse, &mut chirp, &mut bfft);
    bluestein_with_kernel(&mut out, &chirp, &bfft, &mut conv);
    out
}

/// Returns the frequency (Hz) of bin `i` for an `n`-point DFT of a signal
/// sampled at `sample_rate`.
pub fn bin_frequency(i: usize, n: usize, sample_rate: f64) -> f64 {
    i as f64 * sample_rate / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(data: &[Complex]) -> Vec<Complex> {
        let n = data.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (t, &x) in data.iter().enumerate() {
                    let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    acc += x * Complex::from_polar(1.0, ang);
                }
                acc
            })
            .collect()
    }

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((*x - *y).norm() < tol, "bin {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_dft_pow2() {
        let signal: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let mut fast = signal.clone();
        fft(&mut fast);
        assert_spectra_close(&fast, &dft_naive(&signal), 1e-9);
    }

    #[test]
    fn matches_naive_dft_non_pow2() {
        for n in [3usize, 5, 12, 30, 100] {
            let signal: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.1).sin(), 0.2 * i as f64))
                .collect();
            let mut fast = signal.clone();
            fft(&mut fast);
            assert_spectra_close(&fast, &dft_naive(&signal), 1e-8 * n as f64);
        }
    }

    #[test]
    fn round_trip() {
        let signal: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let mut data = signal.clone();
        fft(&mut data);
        ifft(&mut data);
        assert_spectra_close(&data, &signal, 1e-10);
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 256;
        let fs = 1024.0;
        let f0 = 128.0; // exactly bin 32
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        let spec = fft_real(&signal);
        let peak = (1..n / 2)
            .max_by(|&a, &b| spec[a].norm().total_cmp(&spec[b].norm()))
            .unwrap();
        assert_eq!(bin_frequency(peak, n, fs), f0);
        // All other bins should be near zero.
        for (i, v) in spec.iter().enumerate().take(n / 2).skip(1) {
            if i != peak {
                assert!(v.norm() < 1e-9, "leakage at bin {i}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let spec = fft_real(&signal);
        let freq_energy: f64 = spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn scratch_fft_is_bit_identical_to_fft_real() {
        let mut scratch = FftScratch::new();
        // Mixed pow2 / non-pow2 lengths, revisiting each to exercise both
        // the cached-kernel and recompute paths.
        for n in [64usize, 100, 64, 100, 7, 100] {
            let signal: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
            let fresh = fft_real(&signal);
            let reused = scratch.fft_real(&signal);
            assert_eq!(fresh.len(), reused.len());
            for (a, b) in fresh.iter().zip(reused.iter()) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn empty_and_single_are_noops() {
        let mut empty: Vec<Complex> = vec![];
        fft(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![Complex::new(3.0, 1.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex::new(3.0, 1.0));
    }
}
