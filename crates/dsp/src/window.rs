//! Window functions for spectral analysis.
//!
//! Spectrum estimates of CPU current traces use windows to control
//! leakage: the GA fitness metric hunts for narrowband spikes riding on a
//! broadband floor, which raw rectangular windowing would smear.

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No tapering.
    Rectangular,
    /// Hann (raised cosine) — the default; good sidelobe suppression with
    /// moderate main-lobe widening.
    #[default]
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman — strongest sidelobe suppression of the set.
    Blackman,
}

impl Window {
    /// Evaluates the window at sample `i` of `n`.
    pub fn value(self, i: usize, n: usize) -> f64 {
        if n <= 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = 2.0 * std::f64::consts::PI;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - (tau * x).cos()),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// Generates the full window as a vector.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.value(i, n)).collect()
    }

    /// Coherent gain: mean of the window, used to correct amplitude
    /// estimates of narrowband tones.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// Applies the window in place.
    pub fn apply(self, signal: &mut [f64]) {
        let n = signal.len();
        for (i, s) in signal.iter_mut().enumerate() {
            *s *= self.value(i, n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_unity() {
        for i in 0..16 {
            assert_eq!(Window::Rectangular.value(i, 16), 1.0);
        }
        assert_eq!(Window::Rectangular.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_is_zero_at_edges_and_one_in_middle() {
        let n = 65;
        assert!(Window::Hann.value(0, n).abs() < 1e-12);
        assert!(Window::Hann.value(n - 1, n).abs() < 1e-12);
        assert!((Window::Hann.value(32, n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_coherent_gain_is_half() {
        // For large N the Hann coherent gain tends to 0.5.
        let g = Window::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3, "gain {g}");
    }

    #[test]
    fn windows_are_symmetric() {
        let n = 33;
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            for i in 0..n {
                let a = w.value(i, n);
                let b = w.value(n - 1 - i, n);
                assert!((a - b).abs() < 1e-12, "{w:?} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn apply_scales_signal() {
        let mut s = vec![2.0; 8];
        Window::Hann.apply(&mut s);
        assert!(s[0].abs() < 1e-12);
        assert!(s.iter().all(|&v| v <= 2.0));
    }

    #[test]
    fn degenerate_lengths() {
        assert_eq!(Window::Hann.value(0, 0), 1.0);
        assert_eq!(Window::Hann.value(0, 1), 1.0);
        assert_eq!(Window::Blackman.coherent_gain(0), 1.0);
    }
}
