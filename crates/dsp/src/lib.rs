//! # emvolt-dsp
//!
//! Signal-processing primitives shared by the instrument models and
//! experiment harnesses: FFT (radix-2 + Bluestein), window functions and
//! one-sided amplitude spectra with peak extraction.
//!
//! # Examples
//!
//! ```
//! use emvolt_dsp::{Spectrum, Window};
//!
//! let fs = 1000.0;
//! let tone: Vec<f64> = (0..1000)
//!     .map(|i| (2.0 * std::f64::consts::PI * 50.0 * i as f64 / fs).sin())
//!     .collect();
//! let spectrum = Spectrum::of_samples(&tone, fs, Window::Hann);
//! let (freq, amp) = spectrum.peak_in_band(1.0, 500.0).unwrap();
//! assert!((freq - 50.0).abs() < 1.0);
//! assert!((amp - 1.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fft;
pub mod goertzel;
pub mod spectrum;
pub mod stft;
pub mod window;

pub use fft::{bin_frequency, fft, fft_real, ifft, FftScratch};
pub use goertzel::{
    of_samples_band_into, of_samples_band_multi_into, of_trace_band_into, BandSpectrum,
    GoertzelScratch, SpectralBins,
};
pub use spectrum::{
    amplitude_db, dbm_to_watts, power_db, sine_power_watts, watts_to_dbm, Spectrum, SpectrumScratch,
};
pub use stft::Spectrogram;
pub use window::Window;
