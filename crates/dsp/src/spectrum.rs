//! One-sided amplitude spectra and peak extraction.

use crate::fft::FftScratch;
use crate::window::Window;
use emvolt_circuit::Trace;
use emvolt_obs::{CounterId, Layer, Telemetry};

/// Reusable buffers for repeated spectrum computation: the windowed copy
/// of the input plus an [`FftScratch`]. At steady state (same record
/// length across calls) [`Spectrum::of_samples_into`] performs no heap
/// allocation beyond growing the output's bin vector once.
#[derive(Debug, Clone, Default)]
pub struct SpectrumScratch {
    fft: FftScratch,
    windowed: Vec<f64>,
    telemetry: Telemetry,
}

impl SpectrumScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle; spectra computed through this scratch
    /// then charge the FFT counter and (for emitting handles) an `fft`
    /// span. The default handle is inert.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// One-sided amplitude spectrum of a real signal.
///
/// Bin `k` holds the estimated *peak amplitude* (not power) of a sinusoid
/// at `k * freq_step`, corrected for the analysis window's coherent gain,
/// so a pure tone `A*sin(2*pi*f*t)` reports amplitude `A` at `f`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    freq_step: f64,
    bins: Vec<f64>,
}

impl Default for Spectrum {
    /// An empty spectrum with a unit frequency step, intended as the
    /// starting state for the `_into` refill APIs.
    fn default() -> Self {
        Spectrum {
            freq_step: 1.0,
            bins: Vec::new(),
        }
    }
}

impl Spectrum {
    /// Computes the spectrum of raw samples taken at `sample_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not strictly positive.
    pub fn of_samples(samples: &[f64], sample_rate: f64, window: Window) -> Spectrum {
        let mut scratch = SpectrumScratch::new();
        let mut out = Spectrum::default();
        Spectrum::of_samples_into(samples, sample_rate, window, &mut scratch, &mut out);
        out
    }

    /// Computes the spectrum of raw samples into an existing `Spectrum`,
    /// reusing both the scratch buffers and the output's bin storage.
    /// Bit-identical to [`Spectrum::of_samples`].
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is not strictly positive.
    pub fn of_samples_into(
        samples: &[f64],
        sample_rate: f64,
        window: Window,
        scratch: &mut SpectrumScratch,
        out: &mut Spectrum,
    ) {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        let n = samples.len();
        out.bins.clear();
        if n == 0 {
            out.freq_step = sample_rate;
            return;
        }
        scratch.windowed.clear();
        scratch.windowed.extend_from_slice(samples);
        window.apply(&mut scratch.windowed);
        let gain = window.coherent_gain(n).max(1e-12);
        let spec = scratch.fft.fft_real(&scratch.windowed);
        let half = n / 2 + 1;
        let scale = 1.0 / (n as f64 * gain);
        out.bins.extend((0..half).map(|k| {
            let mag = spec[k].norm() * scale;
            // One-sided: double everything except DC (and Nyquist for
            // even N, where the doubling would overcount).
            if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
                mag
            } else {
                2.0 * mag
            }
        }));
        out.freq_step = sample_rate / n as f64;

        scratch.telemetry.count(CounterId::FftInvocations, 1);
        scratch.telemetry.span(
            "fft",
            Layer::Dsp,
            &[("n", n as f64), ("freq_step", out.freq_step)],
        );
    }

    /// Computes the spectrum of a [`Trace`].
    pub fn of_trace(trace: &Trace, window: Window) -> Spectrum {
        Spectrum::of_samples(trace.samples(), trace.sample_rate(), window)
    }

    /// Computes the spectrum of a [`Trace`] into an existing `Spectrum`,
    /// reusing scratch and output storage. Bit-identical to
    /// [`Spectrum::of_trace`].
    pub fn of_trace_into(
        trace: &Trace,
        window: Window,
        scratch: &mut SpectrumScratch,
        out: &mut Spectrum,
    ) {
        Spectrum::of_samples_into(trace.samples(), trace.sample_rate(), window, scratch, out);
    }

    /// Builds a spectrum directly from per-bin amplitudes — used by
    /// transfer-function models that reshape an existing spectrum.
    ///
    /// # Panics
    ///
    /// Panics if `freq_step` is not strictly positive.
    pub fn from_bins(freq_step: f64, bins: Vec<f64>) -> Spectrum {
        assert!(freq_step > 0.0, "frequency step must be positive");
        Spectrum { freq_step, bins }
    }

    /// Overwrites this spectrum in place from per-bin amplitudes, reusing
    /// the bin storage — the allocation-free counterpart of
    /// [`Spectrum::from_bins`].
    ///
    /// # Panics
    ///
    /// Panics if `freq_step` is not strictly positive.
    pub fn refill_from_bins(&mut self, freq_step: f64, bins: impl Iterator<Item = f64>) {
        assert!(freq_step > 0.0, "frequency step must be positive");
        self.freq_step = freq_step;
        self.bins.clear();
        self.bins.extend(bins);
    }

    /// Frequency resolution (Hz per bin).
    pub fn freq_step(&self) -> f64 {
        self.freq_step
    }

    /// Number of bins (DC through Nyquist).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` when the spectrum holds no bins.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Frequency of bin `k`.
    pub fn freq_at(&self, k: usize) -> f64 {
        k as f64 * self.freq_step
    }

    /// Amplitude of bin `k`.
    pub fn amplitude_at(&self, k: usize) -> f64 {
        self.bins[k]
    }

    /// Raw amplitude bins.
    pub fn amplitudes(&self) -> &[f64] {
        &self.bins
    }

    /// Amplitude at the bin nearest to frequency `f`, or `None` when `f`
    /// is outside the covered range.
    pub fn amplitude_near(&self, f: f64) -> Option<f64> {
        if f < 0.0 || self.bins.is_empty() {
            return None;
        }
        let k = (f / self.freq_step).round() as usize;
        self.bins.get(k).copied()
    }

    /// First and last bin indices whose frequencies fall inside
    /// `[lo, hi]`, or `None` when no bin does. Computed directly from
    /// `freq_step` (with a float-safe fixup at each edge) instead of
    /// scanning every bin, and exactly equivalent to filtering on
    /// `k * freq_step >= lo && k * freq_step <= hi`.
    fn band_indices(&self, lo: f64, hi: f64) -> Option<(usize, usize)> {
        let n = self.bins.len();
        if n == 0 || hi < lo {
            return None;
        }
        let step = self.freq_step;
        let mut k0 = if lo <= 0.0 {
            0
        } else {
            let guess = (lo / step).ceil();
            if guess >= n as f64 {
                return None;
            }
            guess as usize
        };
        // `ceil` of the quotient can land one bin off because
        // `k * step` rounds independently of `lo / step`; walk to the
        // smallest k with k*step >= lo.
        while k0 > 0 && (k0 - 1) as f64 * step >= lo {
            k0 -= 1;
        }
        while k0 < n && (k0 as f64) * step < lo {
            k0 += 1;
        }
        if k0 >= n {
            return None;
        }
        let mut k1 = {
            let guess = (hi / step).floor();
            if guess < 0.0 {
                return None;
            }
            (guess as usize).min(n - 1)
        };
        while k1 + 1 < n && ((k1 + 1) as f64) * step <= hi {
            k1 += 1;
        }
        while (k1 as f64) * step > hi {
            if k1 == 0 {
                return None;
            }
            k1 -= 1;
        }
        (k0 <= k1).then_some((k0, k1))
    }

    /// Iterator over `(frequency, amplitude)` pairs within `[lo, hi]` Hz.
    ///
    /// The band's bin range is computed from `freq_step` and only that
    /// slice is visited — no full-spectrum scan.
    pub fn band(&self, lo: f64, hi: f64) -> impl Iterator<Item = (f64, f64)> + '_ {
        let step = self.freq_step;
        let (start, end) = self
            .band_indices(lo, hi)
            .map_or((0, 0), |(k0, k1)| (k0, k1 + 1));
        self.bins[start..end]
            .iter()
            .enumerate()
            .map(move |(i, &a)| ((start + i) as f64 * step, a))
    }

    /// Strongest `(frequency, amplitude)` within `[lo, hi]` Hz, or `None`
    /// when the band contains no bins.
    pub fn peak_in_band(&self, lo: f64, hi: f64) -> Option<(f64, f64)> {
        self.band(lo, hi).max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Up to `count` strongest local peaks within `[lo, hi]` Hz, separated
    /// by at least `min_separation` Hz, strongest first.
    pub fn peaks_in_band(
        &self,
        lo: f64,
        hi: f64,
        count: usize,
        min_separation: f64,
    ) -> Vec<(f64, f64)> {
        let mut candidates: Vec<(f64, f64)> = self.band(lo, hi).collect();
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut picked: Vec<(f64, f64)> = Vec::new();
        for (f, a) in candidates {
            if picked.len() >= count {
                break;
            }
            if picked
                .iter()
                .all(|&(pf, _)| (pf - f).abs() >= min_separation)
            {
                picked.push((f, a));
            }
        }
        picked
    }
}

/// Converts an amplitude ratio to decibels (`20*log10`).
pub fn amplitude_db(ratio: f64) -> f64 {
    20.0 * ratio.max(1e-300).log10()
}

/// Converts a power ratio to decibels (`10*log10`).
pub fn power_db(ratio: f64) -> f64 {
    10.0 * ratio.max(1e-300).log10()
}

/// Converts watts to dBm.
pub fn watts_to_dbm(watts: f64) -> f64 {
    power_db(watts / 1e-3)
}

/// Converts dBm to watts.
pub fn dbm_to_watts(dbm: f64) -> f64 {
    1e-3 * 10f64.powf(dbm / 10.0)
}

/// Peak power in watts of a sinusoidal voltage of peak `amplitude` into a
/// `load_ohms` load, using RMS convention: `P = (A/sqrt(2))^2 / R`.
pub fn sine_power_watts(amplitude: f64, load_ohms: f64) -> f64 {
    (amplitude * amplitude / 2.0) / load_ohms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, fs: f64, f0: f64, a: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn tone_amplitude_is_recovered_rectangular() {
        let fs = 1000.0;
        let s = tone(1000, fs, 50.0, 3.0);
        let spec = Spectrum::of_samples(&s, fs, Window::Rectangular);
        let (f, a) = spec.peak_in_band(1.0, 500.0).unwrap();
        assert!((f - 50.0).abs() < 1e-9);
        assert!((a - 3.0).abs() < 1e-9, "amplitude {a}");
    }

    #[test]
    fn tone_amplitude_is_recovered_hann() {
        let fs = 1000.0;
        let s = tone(1000, fs, 50.0, 2.0);
        let spec = Spectrum::of_samples(&s, fs, Window::Hann);
        let (f, a) = spec.peak_in_band(1.0, 500.0).unwrap();
        assert!((f - 50.0).abs() < 1e-9);
        // Hann coherent-gain correction keeps the estimate within ~1%.
        assert!((a - 2.0).abs() < 0.03, "amplitude {a}");
    }

    #[test]
    fn dc_offset_lands_in_bin_zero() {
        let s = vec![1.5; 256];
        let spec = Spectrum::of_samples(&s, 100.0, Window::Rectangular);
        assert!((spec.amplitude_at(0) - 1.5).abs() < 1e-9);
        assert!(spec.amplitude_at(5) < 1e-9);
    }

    #[test]
    fn two_tones_found_as_separate_peaks() {
        let fs = 1000.0;
        let mut s = tone(2000, fs, 60.0, 1.0);
        let t2 = tone(2000, fs, 180.0, 0.5);
        for (a, b) in s.iter_mut().zip(t2) {
            *a += b;
        }
        let spec = Spectrum::of_samples(&s, fs, Window::Hann);
        let peaks = spec.peaks_in_band(10.0, 400.0, 2, 20.0);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].0 - 60.0).abs() < 1.0);
        assert!((peaks[1].0 - 180.0).abs() < 1.0);
        assert!(peaks[0].1 > peaks[1].1);
    }

    #[test]
    fn band_filtering_respects_limits() {
        let s = tone(512, 512.0, 100.0, 1.0);
        let spec = Spectrum::of_samples(&s, 512.0, Window::Hann);
        assert!(spec.peak_in_band(150.0, 250.0).unwrap().1 < 0.01);
        assert!(spec.peak_in_band(300.0, 200.0).is_none()); // inverted band
    }

    #[test]
    fn db_conversions_round_trip() {
        let w = 2.5e-6;
        assert!((dbm_to_watts(watts_to_dbm(w)) - w).abs() < 1e-18);
        assert!((amplitude_db(10.0) - 20.0).abs() < 1e-12);
        assert!((power_db(100.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn sine_power() {
        // 1 V peak into 50 ohm: (1/sqrt(2))^2/50 = 10 mW
        let p = sine_power_watts(1.0, 50.0);
        assert!((p - 0.01).abs() < 1e-12);
    }

    #[test]
    fn empty_signal_gives_empty_spectrum() {
        let spec = Spectrum::of_samples(&[], 1.0, Window::Hann);
        assert!(spec.is_empty());
        assert!(spec.amplitude_near(1.0).is_none());
    }

    #[test]
    fn of_samples_into_is_bit_identical_across_reuse() {
        let fs = 1000.0;
        let mut scratch = SpectrumScratch::new();
        let mut out = Spectrum::default();
        // Varying non-pow2/pow2 lengths through the same scratch/output.
        for (n, f0) in [(1000usize, 50.0), (512, 120.0), (1000, 75.0), (333, 40.0)] {
            let s = tone(n, fs, f0, 1.7);
            let fresh = Spectrum::of_samples(&s, fs, Window::Hann);
            Spectrum::of_samples_into(&s, fs, Window::Hann, &mut scratch, &mut out);
            assert_eq!(fresh.freq_step(), out.freq_step());
            assert_eq!(fresh.len(), out.len());
            for (a, b) in fresh.amplitudes().iter().zip(out.amplitudes()) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    /// The sliced band iteration must reproduce the historic
    /// filter-every-bin semantics exactly, including float edge cases.
    #[test]
    fn band_slicing_matches_linear_scan() {
        let s = tone(1000, 1000.0, 50.0, 1.0);
        let spec = Spectrum::of_samples(&s, 1000.0, Window::Hann);
        let bands = [
            (-10.0, 20.0),
            (0.0, 0.0),
            (49.9, 50.1),
            (50.0, 50.0),
            (100.0, 500.0),
            (499.5, 600.0),
            (300.0, 200.0),
            (1000.0, 2000.0),
            (f64::NEG_INFINITY, f64::INFINITY),
        ];
        for (lo, hi) in bands {
            let fast: Vec<(f64, f64)> = spec.band(lo, hi).collect();
            let slow: Vec<(f64, f64)> = spec
                .amplitudes()
                .iter()
                .enumerate()
                .map(|(k, &a)| (k as f64 * spec.freq_step(), a))
                .filter(|&(f, _)| f >= lo && f <= hi)
                .collect();
            assert_eq!(fast, slow, "band [{lo}, {hi}]");
        }
    }

    #[test]
    fn amplitude_near_picks_nearest_bin() {
        let fs = 1000.0;
        let s = tone(1000, fs, 50.0, 1.0);
        let spec = Spectrum::of_samples(&s, fs, Window::Rectangular);
        let a = spec.amplitude_near(50.3).unwrap();
        assert!((a - 1.0).abs() < 1e-9);
    }
}
