//! Short-time Fourier transform (spectrogram).
//!
//! Used for time-resolved views of voltage noise: workload phase changes,
//! the onset of resonant oscillation after a power-gating event, or
//! watching two domains' signatures come and go (§6.1).

use crate::spectrum::Spectrum;
use crate::window::Window;

/// A time–frequency magnitude map: one one-sided amplitude spectrum per
/// analysis frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    frame_step_s: f64,
    frames: Vec<Spectrum>,
}

impl Spectrogram {
    /// Computes the spectrogram of `samples` taken at `sample_rate`,
    /// with `frame_len` samples per frame and `hop` samples between
    /// frame starts.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` or `hop` is zero, or `sample_rate` is not
    /// strictly positive.
    pub fn of_samples(
        samples: &[f64],
        sample_rate: f64,
        frame_len: usize,
        hop: usize,
        window: Window,
    ) -> Spectrogram {
        assert!(frame_len > 0 && hop > 0, "frame and hop must be positive");
        assert!(sample_rate > 0.0, "sample rate must be positive");
        let mut frames = Vec::new();
        let mut start = 0;
        while start + frame_len <= samples.len() {
            frames.push(Spectrum::of_samples(
                &samples[start..start + frame_len],
                sample_rate,
                window,
            ));
            start += hop;
        }
        Spectrogram {
            frame_step_s: hop as f64 / sample_rate,
            frames,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no frame fit in the input.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Time between frame starts, in seconds.
    pub fn frame_step(&self) -> f64 {
        self.frame_step_s
    }

    /// The spectrum of frame `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn frame(&self, i: usize) -> &Spectrum {
        &self.frames[i]
    }

    /// Iterator over `(frame_start_time, spectrum)`.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &Spectrum)> + '_ {
        self.frames
            .iter()
            .enumerate()
            .map(move |(i, s)| (i as f64 * self.frame_step_s, s))
    }

    /// The amplitude of the bin nearest `freq` in each frame — a
    /// single-frequency "power versus time" cut through the spectrogram.
    pub fn track(&self, freq: f64) -> Vec<f64> {
        self.frames
            .iter()
            .map(|s| s.amplitude_near(freq).unwrap_or(0.0))
            .collect()
    }

    /// Frame index whose band peak in `[lo, hi]` is the largest, with the
    /// peak itself — locates *when* an emission was strongest.
    pub fn strongest_frame_in_band(&self, lo: f64, hi: f64) -> Option<(usize, f64, f64)> {
        self.frames
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.peak_in_band(lo, hi).map(|(f, a)| (i, f, a)))
            .max_by(|a, b| a.2.total_cmp(&b.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tone that switches frequency halfway through.
    fn chirped(n: usize, fs: f64, f1: f64, f2: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let f = if i < n / 2 { f1 } else { f2 };
                (2.0 * std::f64::consts::PI * f * i as f64 / fs).sin()
            })
            .collect()
    }

    #[test]
    fn frame_count_and_step() {
        let s = vec![0.0; 1000];
        let sg = Spectrogram::of_samples(&s, 1000.0, 256, 128, Window::Hann);
        assert_eq!(sg.len(), (1000 - 256) / 128 + 1);
        assert!((sg.frame_step() - 0.128).abs() < 1e-12);
    }

    #[test]
    fn tracks_a_frequency_hop() {
        let fs = 10_000.0;
        let s = chirped(4096, fs, 500.0, 2000.0);
        let sg = Spectrogram::of_samples(&s, fs, 512, 256, Window::Hann);
        let early = sg.frame(0).peak_in_band(100.0, 4000.0).unwrap().0;
        let late = sg
            .frame(sg.len() - 1)
            .peak_in_band(100.0, 4000.0)
            .unwrap()
            .0;
        assert!((early - 500.0).abs() < 50.0, "early {early}");
        assert!((late - 2000.0).abs() < 50.0, "late {late}");
    }

    #[test]
    fn track_rises_when_the_tone_appears() {
        let fs = 10_000.0;
        let s = chirped(4096, fs, 500.0, 2000.0);
        let sg = Spectrogram::of_samples(&s, fs, 512, 256, Window::Hann);
        let track = sg.track(2000.0);
        assert!(track.last().unwrap() > &(track[0] * 5.0 + 1e-6));
    }

    #[test]
    fn strongest_frame_is_found() {
        let fs = 10_000.0;
        // A burst in the middle third only.
        let s: Vec<f64> = (0..3000)
            .map(|i| {
                if (1000..2000).contains(&i) {
                    (2.0 * std::f64::consts::PI * 1500.0 * i as f64 / fs).sin()
                } else {
                    0.0
                }
            })
            .collect();
        let sg = Spectrogram::of_samples(&s, fs, 500, 250, Window::Hann);
        let (idx, f, _) = sg.strongest_frame_in_band(1000.0, 2000.0).unwrap();
        let t = idx as f64 * sg.frame_step();
        assert!((0.08..0.22).contains(&t), "burst located at t={t}");
        assert!((f - 1500.0).abs() < 60.0);
    }

    #[test]
    fn short_input_yields_empty() {
        let sg = Spectrogram::of_samples(&[1.0; 10], 100.0, 64, 32, Window::Hann);
        assert!(sg.is_empty());
        assert!(sg.strongest_frame_in_band(0.0, 50.0).is_none());
    }
}
