//! Band-limited spectral evaluation via the Goertzel algorithm.
//!
//! The measurement chain's spectrum analyzer only ever reads a narrow
//! band (the paper's 50–200 MHz EM resonance window), yet the full-FFT
//! path computes every bin of a Bluestein transform. The Goertzel
//! recurrence evaluates the *same* DFT bins — `X_k` for exactly the bins
//! a band sweep will scan — in `O(n)` per bin with no transform-length
//! padding, which wins whenever the band covers a minority of the
//! spectrum.
//!
//! Bin values agree with [`Spectrum::of_samples_into`] to rounding: both
//! compute the identical windowed DFT coefficient, but the Goertzel
//! recurrence accumulates it in a different floating-point order than
//! the FFT butterflies, so the equivalence contract is a documented
//! tolerance (see DESIGN.md §9 and the property tests), not `to_bits`.
//!
//! The recurrence state is laid out as flat per-bin arrays and the
//! sample loop is the outer loop, so the inner per-bin update has no
//! cross-iteration dependency and vectorizes cleanly.

use crate::spectrum::Spectrum;
use crate::window::Window;
use emvolt_circuit::Trace;
use emvolt_obs::{CounterId, Layer, Telemetry};

/// Read-only view of a one-sided amplitude spectrum, implemented by both
/// the dense [`Spectrum`] and the band-limited [`BandSpectrum`].
///
/// Consumers that scan bins by index (the spectrum analyzer's sweep, the
/// EM channel's transfer application) are generic over this trait, so a
/// band-limited spectrum slots into the measurement chain wherever a
/// full one is accepted.
pub trait SpectralBins {
    /// Frequency resolution (Hz per bin).
    fn freq_step(&self) -> f64;

    /// Number of addressable bins (DC through Nyquist) — for a band
    /// view, the *logical* bin count of the underlying full spectrum,
    /// not just the bins actually evaluated.
    fn len(&self) -> usize;

    /// `true` when the spectrum holds no bins.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Amplitude of bin `k`. Band views return `0.0` outside the band
    /// they evaluated.
    fn amplitude_at(&self, k: usize) -> f64;

    /// Frequency of bin `k`.
    fn freq_at(&self, k: usize) -> f64 {
        k as f64 * self.freq_step()
    }
}

impl SpectralBins for Spectrum {
    fn freq_step(&self) -> f64 {
        Spectrum::freq_step(self)
    }

    fn len(&self) -> usize {
        Spectrum::len(self)
    }

    fn amplitude_at(&self, k: usize) -> f64 {
        Spectrum::amplitude_at(self, k)
    }
}

/// Amplitudes for a contiguous run of DFT bins, indexed like the full
/// spectrum they were cut from.
///
/// `len()` reports the full spectrum's bin count and `amplitude_at`
/// answers `0.0` for bins outside the evaluated band, so downstream
/// index arithmetic (analyzer scan windows, `f / freq_step` clamps)
/// behaves exactly as it does on a dense [`Spectrum`]. The analyzer's
/// sweep already skips zero-amplitude bins, so out-of-band zeros cost
/// nothing there.
#[derive(Debug, Clone, PartialEq)]
pub struct BandSpectrum {
    freq_step: f64,
    first_bin: usize,
    total_bins: usize,
    bins: Vec<f64>,
}

impl Default for BandSpectrum {
    /// An empty band with a unit frequency step, intended as the starting
    /// state for the `_into` refill APIs.
    fn default() -> Self {
        BandSpectrum {
            freq_step: 1.0,
            first_bin: 0,
            total_bins: 0,
            bins: Vec::new(),
        }
    }
}

impl BandSpectrum {
    /// Index of the first evaluated bin.
    pub fn first_bin(&self) -> usize {
        self.first_bin
    }

    /// Number of bins actually evaluated (the band, not the full
    /// spectrum).
    pub fn covered_bins(&self) -> usize {
        self.bins.len()
    }

    /// Evaluated amplitudes, first bin at [`BandSpectrum::first_bin`].
    pub fn amplitudes(&self) -> &[f64] {
        &self.bins
    }

    /// Overwrites this band in place from per-bin amplitudes, reusing the
    /// bin storage — the band counterpart of
    /// [`Spectrum::refill_from_bins`].
    ///
    /// # Panics
    ///
    /// Panics if `freq_step` is not strictly positive or the band extends
    /// past `total_bins`.
    pub fn refill_from_bins(
        &mut self,
        freq_step: f64,
        first_bin: usize,
        total_bins: usize,
        bins: impl Iterator<Item = f64>,
    ) {
        assert!(freq_step > 0.0, "frequency step must be positive");
        self.freq_step = freq_step;
        self.first_bin = first_bin;
        self.total_bins = total_bins;
        self.bins.clear();
        self.bins.extend(bins);
        assert!(
            first_bin + self.bins.len() <= total_bins,
            "band extends past the spectrum"
        );
    }

    /// Overwrites this band in place from the elementwise product
    /// `amps[j] * scale[j]` — the EM channel's transfer application —
    /// running the multiply on the runtime-dispatched SIMD level (every
    /// level is bit-identical; see `emvolt-simd`).
    ///
    /// # Panics
    ///
    /// Panics if `freq_step` is not strictly positive, `amps` and `scale`
    /// differ in length, or the band extends past `total_bins`.
    pub fn refill_from_product(
        &mut self,
        freq_step: f64,
        first_bin: usize,
        total_bins: usize,
        amps: &[f64],
        scale: &[f64],
    ) {
        assert!(freq_step > 0.0, "frequency step must be positive");
        assert_eq!(amps.len(), scale.len(), "amplitude/scale length mismatch");
        assert!(
            first_bin + amps.len() <= total_bins,
            "band extends past the spectrum"
        );
        self.freq_step = freq_step;
        self.first_bin = first_bin;
        self.total_bins = total_bins;
        self.bins.clear();
        self.bins.resize(amps.len(), 0.0);
        emvolt_simd::level().mul(amps, scale, &mut self.bins);
    }
}

impl SpectralBins for BandSpectrum {
    fn freq_step(&self) -> f64 {
        self.freq_step
    }

    fn len(&self) -> usize {
        self.total_bins
    }

    fn amplitude_at(&self, k: usize) -> f64 {
        if k < self.first_bin {
            0.0
        } else {
            self.bins.get(k - self.first_bin).copied().unwrap_or(0.0)
        }
    }
}

/// Reusable buffers for repeated band evaluations: the windowed copy of
/// the input plus the per-bin recurrence state. At steady state (same
/// record length and band across calls) [`of_samples_band_into`]
/// performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct GoertzelScratch {
    windowed: Vec<f64>,
    coeff: Vec<f64>,
    s1: Vec<f64>,
    s2: Vec<f64>,
    /// Per-sample window coefficients, shared by the windowing pass and
    /// the coherent-gain sum (and across every lane of a multi-lane
    /// call).
    wcoef: Vec<f64>,
    telemetry: Telemetry,
}

impl GoertzelScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry handle; bands computed through this scratch
    /// then charge the Goertzel counter and (for emitting handles) a
    /// `goertzel` span. The default handle is inert.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// Evaluates the amplitude bins covering `[lo_hz, hi_hz]` of the signal's
/// one-sided spectrum, windowed and scaled identically to
/// [`Spectrum::of_samples_into`].
///
/// The covered bin range is widened outward — `floor(lo/step)` through
/// `ceil(hi/step)`, clamped to the spectrum — so every bin whose
/// frequency could enter a scan window over `[lo_hz, hi_hz]` is present.
/// An inverted or fully out-of-range band yields zero covered bins (but
/// the logical bin count is still that of the full spectrum).
///
/// # Panics
///
/// Panics if `sample_rate` is not strictly positive.
pub fn of_samples_band_into(
    samples: &[f64],
    sample_rate: f64,
    window: Window,
    lo_hz: f64,
    hi_hz: f64,
    scratch: &mut GoertzelScratch,
    out: &mut BandSpectrum,
) {
    assert!(sample_rate > 0.0, "sample rate must be positive");
    let n = samples.len();
    out.bins.clear();
    out.first_bin = 0;
    if n == 0 {
        out.freq_step = sample_rate;
        out.total_bins = 0;
        return;
    }
    let total_bins = n / 2 + 1;
    let freq_step = sample_rate / n as f64;
    out.freq_step = freq_step;
    out.total_bins = total_bins;

    let k0 = if lo_hz <= 0.0 {
        0
    } else {
        ((lo_hz / freq_step).floor() as usize).min(total_bins)
    };
    let k1 = if hi_hz < lo_hz || hi_hz < 0.0 {
        0
    } else {
        (((hi_hz / freq_step).ceil() as usize) + 1).min(total_bins)
    };
    out.first_bin = k0;
    if k1 <= k0 {
        return;
    }
    let nb = k1 - k0;

    // The window coefficients are computed once into `wcoef`, the
    // windowed product runs through the dispatched SIMD multiply, and the
    // coherent gain sums the same coefficients in the same order as
    // `Window::coherent_gain` — every value is identical to the historic
    // in-place `Window::apply` path.
    let GoertzelScratch {
        windowed,
        coeff,
        s1,
        s2,
        wcoef,
        ..
    } = scratch;
    let lv = emvolt_simd::level();
    wcoef.clear();
    wcoef.extend((0..n).map(|i| window.value(i, n)));
    let gain = (wcoef.iter().sum::<f64>() / n as f64).max(1e-12);
    let scale = 1.0 / (n as f64 * gain);
    windowed.clear();
    windowed.resize(n, 0.0);
    lv.mul(samples, wcoef, windowed);

    coeff.clear();
    coeff.extend((k0..k1).map(|k| {
        let w = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        2.0 * w.cos()
    }));
    s1.clear();
    s1.resize(nb, 0.0);
    s2.clear();
    s2.resize(nb, 0.0);

    // Sample-outer / bin-inner recurrence on the dispatched SIMD level:
    // the inner loop has no cross-iteration dependency, so it vectorizes
    // across bins, and four samples advance per inner pass so the state
    // arrays are loaded and stored once per quad. The per-bin sequence is
    // the fused `c.mul_add(s1, x − s2)` step at every level, so results
    // are bit-identical across dispatch levels (see `emvolt-simd`).
    lv.goertzel(windowed, coeff, s1, s2);

    out.bins.extend((0..nb).map(|j| {
        let power = s1[j] * s1[j] + s2[j] * s2[j] - coeff[j] * s1[j] * s2[j];
        let mag = power.max(0.0).sqrt() * scale;
        let k = k0 + j;
        // One-sided doubling, same rule as the full-FFT path.
        if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
            mag
        } else {
            2.0 * mag
        }
    }));

    scratch.telemetry.count(CounterId::GoertzelInvocations, 1);
    scratch.telemetry.span(
        "goertzel",
        Layer::Dsp,
        &[("n", n as f64), ("bins", nb as f64)],
    );
}

/// Multi-lane band evaluation: `lanes` independent signals of equal
/// length evaluated over one shared bin grid in a single pass.
///
/// Everything that depends only on the record length and band is
/// computed once and shared across every lane: the per-sample window
/// coefficients, the coherent gain, and the per-bin recurrence
/// coefficients `2·cos(2πk/n)` — the serial path redoes all three
/// (including `2n` trig evaluations of window shape) per call. Each
/// lane then runs the serial path's own bin-vectorized quad recurrence
/// against the shared state, so per lane the arithmetic sequence
/// (windowing, per-bin recurrence in sample order, magnitude
/// extraction) is exactly [`of_samples_band_into`]'s and `outs[l]` is
/// bit-identical to a serial evaluation of `lanes[l]` alone. One
/// [`CounterId::GoertzelInvocations`] tick is charged per lane, matching
/// the serial cost model.
///
/// Lanes of differing lengths have different bin grids and are evaluated
/// serially (still bit-identical per lane).
///
/// # Panics
///
/// Panics if `sample_rate` is not strictly positive or `outs` is shorter
/// than `lanes`.
pub fn of_samples_band_multi_into(
    lanes: &[&[f64]],
    sample_rate: f64,
    window: Window,
    lo_hz: f64,
    hi_hz: f64,
    scratch: &mut GoertzelScratch,
    outs: &mut [BandSpectrum],
) {
    assert!(sample_rate > 0.0, "sample rate must be positive");
    assert!(outs.len() >= lanes.len(), "one output band per lane");
    let n_lanes = lanes.len();
    if n_lanes == 0 {
        return;
    }
    let n = lanes[0].len();
    if n_lanes == 1 || lanes.iter().any(|s| s.len() != n) {
        for (samples, out) in lanes.iter().zip(outs.iter_mut()) {
            of_samples_band_into(samples, sample_rate, window, lo_hz, hi_hz, scratch, out);
        }
        return;
    }
    let outs = &mut outs[..n_lanes];
    for out in outs.iter_mut() {
        out.bins.clear();
        out.first_bin = 0;
    }
    if n == 0 {
        for out in outs.iter_mut() {
            out.freq_step = sample_rate;
            out.total_bins = 0;
        }
        return;
    }
    let total_bins = n / 2 + 1;
    let freq_step = sample_rate / n as f64;

    let k0 = if lo_hz <= 0.0 {
        0
    } else {
        ((lo_hz / freq_step).floor() as usize).min(total_bins)
    };
    let k1 = if hi_hz < lo_hz || hi_hz < 0.0 {
        0
    } else {
        (((hi_hz / freq_step).ceil() as usize) + 1).min(total_bins)
    };
    for out in outs.iter_mut() {
        out.freq_step = freq_step;
        out.total_bins = total_bins;
        out.first_bin = k0;
    }
    if k1 <= k0 {
        return;
    }
    let nb = k1 - k0;

    // The per-sample window coefficients and the coherent gain depend
    // only on the record length, so one lane-shared computation replaces
    // the per-call trig the serial path pays for both. The windowed
    // product `samples[i] * w[i]` multiplies exactly the values the
    // serial in-place apply multiplies, and the gain sums the same
    // coefficients in the same order, so every lane stays bit-identical.
    let GoertzelScratch {
        windowed,
        coeff,
        s1,
        s2,
        wcoef,
        ..
    } = scratch;
    let lv = emvolt_simd::level();
    wcoef.clear();
    wcoef.extend((0..n).map(|i| window.value(i, n)));
    let gain = (wcoef.iter().sum::<f64>() / n as f64).max(1e-12);
    let scale = 1.0 / (n as f64 * gain);

    // Windowed copies, lane-major `[L][n]`, through the dispatched SIMD
    // multiply (same products as the serial path's windowing pass).
    windowed.clear();
    windowed.resize(n_lanes * n, 0.0);
    for (samples, lane_w) in lanes.iter().zip(windowed.chunks_exact_mut(n)) {
        lv.mul(samples, wcoef, lane_w);
    }

    coeff.clear();
    coeff.extend((k0..k1).map(|k| {
        let w = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
        2.0 * w.cos()
    }));

    // Each lane runs the serial path's dispatched quad recurrence (four
    // samples per bin-vectorized state pass) against the shared
    // coefficients. The recurrence chain is latency-bound, so the shared
    // trig above is where the multi-lane win comes from; the kernel's
    // per-bin chain (fused `c.mul_add(s1, x − s2)` in sample order) is
    // exactly the serial sequence, so every lane stays bit-identical to
    // a serial evaluation.
    for (lane_w, out) in windowed.chunks_exact(n).zip(outs.iter_mut()) {
        s1.clear();
        s1.resize(nb, 0.0);
        s2.clear();
        s2.resize(nb, 0.0);
        lv.goertzel(lane_w, coeff, s1, s2);
        out.bins.extend((0..nb).map(|j| {
            let a = s1[j];
            let b = s2[j];
            let power = a * a + b * b - coeff[j] * a * b;
            let mag = power.max(0.0).sqrt() * scale;
            let k = k0 + j;
            if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
                mag
            } else {
                2.0 * mag
            }
        }));
    }

    scratch
        .telemetry
        .count(CounterId::GoertzelInvocations, n_lanes as u64);
    scratch.telemetry.span(
        "goertzel",
        Layer::Dsp,
        &[
            ("n", n as f64),
            ("bins", nb as f64),
            ("lanes", n_lanes as f64),
        ],
    );
}

/// Evaluates the band `[lo_hz, hi_hz]` of a [`Trace`]'s spectrum — the
/// trace counterpart of [`of_samples_band_into`].
pub fn of_trace_band_into(
    trace: &Trace,
    window: Window,
    lo_hz: f64,
    hi_hz: f64,
    scratch: &mut GoertzelScratch,
    out: &mut BandSpectrum,
) {
    of_samples_band_into(
        trace.samples(),
        trace.sample_rate(),
        window,
        lo_hz,
        hi_hz,
        scratch,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, fs: f64, f0: f64, a: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect()
    }

    fn band_of(samples: &[f64], fs: f64, window: Window, lo: f64, hi: f64) -> BandSpectrum {
        let mut scratch = GoertzelScratch::new();
        let mut out = BandSpectrum::default();
        of_samples_band_into(samples, fs, window, lo, hi, &mut scratch, &mut out);
        out
    }

    #[test]
    fn band_bins_match_full_fft_bins() {
        let fs = 1000.0;
        let s = tone(1000, fs, 50.0, 3.0);
        let full = Spectrum::of_samples(&s, fs, Window::Hann);
        let band = band_of(&s, fs, Window::Hann, 30.0, 80.0);
        assert_eq!(band.freq_step(), full.freq_step());
        assert_eq!(SpectralBins::len(&band), full.len());
        let peak = full
            .amplitudes()
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        for k in band.first_bin()..band.first_bin() + band.covered_bins() {
            let a = full.amplitude_at(k);
            let b = SpectralBins::amplitude_at(&band, k);
            assert!(
                (a - b).abs() <= 1e-9 * peak.max(1e-300),
                "bin {k}: fft={a}, goertzel={b}"
            );
        }
    }

    #[test]
    fn out_of_band_bins_read_zero() {
        let fs = 1000.0;
        let s = tone(512, fs, 100.0, 1.0);
        let band = band_of(&s, fs, Window::Hann, 80.0, 120.0);
        assert_eq!(SpectralBins::amplitude_at(&band, 0), 0.0);
        assert_eq!(SpectralBins::amplitude_at(&band, 256), 0.0);
        assert!(band.first_bin() > 0);
        assert!(band.covered_bins() < SpectralBins::len(&band));
    }

    #[test]
    fn band_edges_cover_scan_clamps() {
        // The analyzer clamps scan windows with floor(lo/step) and
        // ceil(hi/step); the evaluated band must include both edges.
        let fs = 1000.0;
        let s = tone(1000, fs, 100.0, 1.0);
        let band = band_of(&s, fs, Window::Hann, 50.4, 149.6);
        let step = band.freq_step();
        let k_lo = (50.4 / step).floor() as usize;
        let k_hi = (149.6 / step).ceil() as usize;
        assert!(band.first_bin() <= k_lo);
        assert!(band.first_bin() + band.covered_bins() > k_hi);
    }

    #[test]
    fn degenerate_bands_are_empty_but_sized() {
        let fs = 1000.0;
        let s = tone(256, fs, 60.0, 1.0);
        let inverted = band_of(&s, fs, Window::Hann, 200.0, 100.0);
        assert_eq!(inverted.covered_bins(), 0);
        assert_eq!(SpectralBins::len(&inverted), 129);
        let empty = band_of(&[], fs, Window::Hann, 0.0, 100.0);
        assert!(SpectralBins::is_empty(&empty));
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let fs = 1000.0;
        let mut scratch = GoertzelScratch::new();
        let mut out = BandSpectrum::default();
        for (n, f0) in [(1000usize, 50.0), (512, 120.0), (1000, 75.0)] {
            let s = tone(n, fs, f0, 1.7);
            let fresh = band_of(&s, fs, Window::Hann, 20.0, 200.0);
            of_samples_band_into(&s, fs, Window::Hann, 20.0, 200.0, &mut scratch, &mut out);
            assert_eq!(fresh, out, "n={n}");
        }
    }
}
