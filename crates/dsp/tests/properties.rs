//! Property-based tests for the DSP crate.

use emvolt_circuit::Complex;
use emvolt_dsp::{fft, ifft, Spectrum, Window};
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0..10.0f64, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT followed by IFFT reproduces the input for arbitrary lengths,
    /// including non-powers-of-two (Bluestein path).
    #[test]
    fn fft_round_trip(signal in arb_signal(200)) {
        let original: Vec<Complex> =
            signal.iter().map(|&x| Complex::from_real(x)).collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((*a - *b).norm() < 1e-8, "{a} vs {b}");
        }
    }

    /// Parseval: time-domain energy equals frequency-domain energy / N.
    #[test]
    fn parseval(signal in arb_signal(150)) {
        let n = signal.len() as f64;
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let mut data: Vec<Complex> =
            signal.iter().map(|&x| Complex::from_real(x)).collect();
        fft(&mut data);
        let freq_energy: f64 = data.iter().map(|c| c.norm_sqr()).sum::<f64>() / n;
        prop_assert!(
            (time_energy - freq_energy).abs() <= 1e-7 * (1.0 + time_energy),
            "time {time_energy} vs freq {freq_energy}"
        );
    }

    /// Every lane of the multi-lane Goertzel must reproduce a serial
    /// band evaluation of that lane bit-for-bit, for arbitrary signals,
    /// lane counts and record lengths (quad remainders included).
    #[test]
    fn multi_lane_goertzel_is_bit_identical_to_serial(
        n in 8usize..120,
        n_lanes in 1usize..9,
        seed in 0u64..1000,
        lo in 0.0..200.0f64,
        width in 10.0..300.0f64,
    ) {
        use emvolt_dsp::{
            of_samples_band_into, of_samples_band_multi_into, BandSpectrum, GoertzelScratch,
        };
        let fs = 1000.0;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        };
        let signals: Vec<Vec<f64>> =
            (0..n_lanes).map(|_| (0..n).map(|_| next()).collect()).collect();
        let lanes: Vec<&[f64]> = signals.iter().map(|s| s.as_slice()).collect();

        let mut multi_scratch = GoertzelScratch::new();
        let mut outs = vec![BandSpectrum::default(); n_lanes];
        of_samples_band_multi_into(
            &lanes, fs, Window::Hann, lo, lo + width, &mut multi_scratch, &mut outs,
        );

        let mut serial_scratch = GoertzelScratch::new();
        let mut serial = BandSpectrum::default();
        for (l, samples) in signals.iter().enumerate() {
            of_samples_band_into(
                samples, fs, Window::Hann, lo, lo + width, &mut serial_scratch, &mut serial,
            );
            prop_assert_eq!(serial.first_bin(), outs[l].first_bin(), "lane {}", l);
            prop_assert_eq!(serial.covered_bins(), outs[l].covered_bins(), "lane {}", l);
            for (j, (a, b)) in serial
                .amplitudes()
                .iter()
                .zip(outs[l].amplitudes())
                .enumerate()
            {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "lane {} of {} diverged at covered bin {}", l, n_lanes, j
                );
            }
        }
    }

    /// FFT is linear: FFT(a*x) == a*FFT(x).
    #[test]
    fn fft_is_homogeneous(signal in arb_signal(100), scale in -5.0..5.0f64) {
        let mut x: Vec<Complex> = signal.iter().map(|&v| Complex::from_real(v)).collect();
        let mut sx: Vec<Complex> =
            signal.iter().map(|&v| Complex::from_real(v * scale)).collect();
        fft(&mut x);
        fft(&mut sx);
        for (a, b) in x.iter().zip(&sx) {
            prop_assert!((a.scale(scale) - *b).norm() < 1e-7);
        }
    }

    /// A pure in-bin tone of arbitrary amplitude/frequency is recovered by
    /// the amplitude spectrum within 1%.
    #[test]
    fn spectrum_recovers_tone(
        bin in 2usize..100,
        amp in 0.01..100.0f64,
    ) {
        let n = 512;
        let fs = 1024.0;
        let f0 = bin as f64 * fs / n as f64;
        let signal: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        let spec = Spectrum::of_samples(&signal, fs, Window::Hann);
        let (f, a) = spec.peak_in_band(1.0, fs / 2.0).unwrap();
        prop_assert!((f - f0).abs() < fs / n as f64);
        prop_assert!((a - amp).abs() / amp < 0.01, "amp {a} vs {amp}");
    }

    /// Spectrum bins are non-negative and finite.
    #[test]
    fn spectrum_is_physical(signal in arb_signal(128)) {
        let spec = Spectrum::of_samples(&signal, 1e6, Window::Blackman);
        for &a in spec.amplitudes() {
            prop_assert!(a.is_finite());
            prop_assert!(a >= 0.0);
        }
    }

    /// Window coherent gain is in (0, 1] for all supported windows.
    #[test]
    fn coherent_gain_bounds(n in 2usize..2000) {
        for w in [Window::Rectangular, Window::Hann, Window::Hamming, Window::Blackman] {
            let g = w.coherent_gain(n);
            prop_assert!(g > 0.0 && g <= 1.0 + 1e-12, "{w:?} gain {g}");
        }
    }

    /// Goertzel band evaluation agrees with the full-FFT spectrum bin for
    /// bin, for arbitrary signals, windows and band placements — the
    /// contract that lets the measurement chain swap between the two.
    #[test]
    fn goertzel_band_matches_fft_bins(
        signal in arb_signal(300),
        window_idx in 0usize..4,
        lo_frac in 0.0..1.0f64,
        width_frac in 0.0..1.0f64,
    ) {
        use emvolt_dsp::{of_samples_band_into, BandSpectrum, GoertzelScratch, SpectralBins};
        let window = [Window::Rectangular, Window::Hann, Window::Hamming, Window::Blackman]
            [window_idx];
        let fs = 1e6;
        let nyquist = fs / 2.0;
        let lo = lo_frac * nyquist;
        let hi = lo + width_frac * (nyquist - lo);

        let full = Spectrum::of_samples(&signal, fs, window);
        let mut scratch = GoertzelScratch::new();
        let mut band = BandSpectrum::default();
        of_samples_band_into(&signal, fs, window, lo, hi, &mut scratch, &mut band);

        prop_assert_eq!(SpectralBins::len(&band), full.len());
        prop_assert!((band.freq_step() - full.freq_step()).abs() < 1e-12 * full.freq_step());
        let peak = full.amplitudes().iter().fold(0.0f64, |m, &v| m.max(v));
        let tol = 1e-9 * peak.max(1e-12);
        for k in band.first_bin()..band.first_bin() + band.covered_bins() {
            let a = full.amplitude_at(k);
            let b = SpectralBins::amplitude_at(&band, k);
            prop_assert!((a - b).abs() <= tol, "bin {}: fft={}, goertzel={}", k, a, b);
        }
        // Out-of-band logical bins read zero so index-clamping consumers
        // behave identically.
        if band.first_bin() > 0 {
            prop_assert_eq!(SpectralBins::amplitude_at(&band, band.first_bin() - 1), 0.0);
        }
    }
}
