//! Campaign-level benchmark: the full EM-driven GA measurement pipeline,
//! serial closure vs. the batch path at several thread counts.
//!
//! The batch path reuses a pooled `DomainRunner` (netlist + LU built
//! once) and a `SharedEmBench`, so even at one thread it beats the
//! serial adapter, which pays PDN setup per individual. Record the
//! numbers in EXPERIMENTS.md when they move.

use criterion::{criterion_group, criterion_main, Criterion};
use emvolt_bench::fixtures::a72_domain;
use emvolt_core::{generate_em_virus, VirusGenConfig};
use emvolt_ga::{GaConfig, GaEngine, KernelRepresentation};
use emvolt_isa::{InstructionPool, Kernel};
use emvolt_platform::EmBench;

/// Reduced campaign: 8 individuals x 5 generations, 3 spectrum samples
/// each — the same physics per individual as the paper's flow, scaled to
/// bench-friendly runtime.
fn campaign_config(threads: usize, cache_fitness: bool) -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 8,
            generations: 5,
            seed: 0xBE7C,
            ..GaConfig::default()
        },
        kernel_len: 20,
        samples_per_individual: 3,
        threads,
        cache_fitness,
        ..VirusGenConfig::default()
    }
}

/// The pre-batch pipeline: a serial `FnMut` fitness that rebuilds the
/// PDN and pays full setup on every `VoltageDomain::run` call.
fn serial_baseline() -> f64 {
    let domain = a72_domain();
    let mut bench = EmBench::new(0xBE7C);
    let config = campaign_config(1, false);
    let pool = InstructionPool::default_for(domain.core_model().isa);
    let repr = KernelRepresentation::new(pool, config.kernel_len);
    let mut engine = GaEngine::new(repr, config.ga.clone());
    let result = engine.run(
        |kernel: &Kernel| match domain.run(kernel, config.loaded_cores, &config.run) {
            Ok(run) => {
                bench
                    .measure_in_band(
                        &run,
                        config.band.0,
                        config.band.1,
                        config.samples_per_individual,
                    )
                    .metric_dbm
            }
            Err(_) => -200.0,
        },
        |_| {},
    );
    // The pre-batch pipeline's post-processing: re-run every generation
    // best for its dominant frequency, then re-measure the winner.
    for k in &result.generation_best {
        let run = domain.run(k, config.loaded_cores, &config.run).unwrap();
        let _ = bench.measure_in_band(&run, config.band.0, config.band.1, 5);
    }
    let final_run = domain
        .run(&result.best, config.loaded_cores, &config.run)
        .unwrap();
    let _ = bench.measure_in_band(
        &final_run,
        config.band.0,
        config.band.1,
        config.samples_per_individual,
    );
    result.best_fitness
}

fn batch_campaign(threads: usize, cache_fitness: bool) -> f64 {
    let domain = a72_domain();
    let mut bench = EmBench::new(0xBE7C);
    let config = campaign_config(threads, cache_fitness);
    generate_em_virus("bench", &domain, &mut bench, &config)
        .expect("campaign runs")
        .fitness
}

fn bench_campaign(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);

    g.bench_function("em_serial_adapter", |b| b.iter(serial_baseline));
    g.bench_function("em_batch_1_thread", |b| b.iter(|| batch_campaign(1, false)));
    g.bench_function("em_batch_4_threads", |b| {
        b.iter(|| batch_campaign(4, false))
    });
    g.bench_function("em_batch_4_threads_cached", |b| {
        b.iter(|| batch_campaign(4, true))
    });
    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
