//! Single-evaluation benchmarks: the per-individual cost the GA pays
//! `population x generations` times per campaign.
//!
//! Three levels are timed: the solver alone (one PDN transient), one
//! full `DomainRunner` evaluation (CPU sim + transient), and the full
//! measurement chain (evaluation + spectrum + analyzer metric). Record
//! before/after numbers in EXPERIMENTS.md when they move.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use emvolt_bench::fixtures::{a72_domain, arm_kernel};
use emvolt_circuit::TransientScratch;
use emvolt_platform::{
    BatchTransientScratch, DomainRun, DomainRunner, EmBench, KernelChoice, MeasureScratch,
    RunConfig, SpectralChoice,
};

fn bench_solver(c: &mut Criterion) {
    let domain = a72_domain();
    let pdn = domain.build_pdn();
    let cfg = RunConfig::fast();
    let transient_cfg =
        emvolt_circuit::TransientConfig::new(cfg.pdn_dt, cfg.pdn_warmup + cfg.pdn_window)
            .with_warmup(cfg.pdn_warmup);
    let plan = pdn.plan_transient(cfg.pdn_dt).unwrap();

    let mut g = c.benchmark_group("solver");
    // Allocating path: records every node and branch into fresh Vecs.
    g.bench_function("transient_with_plan_full_record", |b| {
        b.iter(|| {
            let (v, i) = pdn.transient_with_plan(&plan, &transient_cfg).unwrap();
            black_box((v.len(), i.len()))
        })
    });
    // Zero-allocation path: probes only the die node and package branch
    // and reuses one scratch across iterations.
    let mut scratch = TransientScratch::new();
    g.bench_function("transient_scoped_reused_scratch", |b| {
        b.iter(|| {
            let die = pdn
                .transient_scoped(&plan, &transient_cfg, &mut scratch)
                .unwrap();
            black_box((die.len(), die.v_die()[die.len() - 1]))
        })
    });
    // Kernel head-to-head on the same plan shape: LU back-substitution
    // per step vs the precomputed state-space update.
    let plan_lu = pdn
        .plan_transient_kernel(cfg.pdn_dt, KernelChoice::Lu)
        .unwrap();
    g.bench_function("transient_scoped_lu_kernel", |b| {
        b.iter(|| {
            let die = pdn
                .transient_scoped(&plan_lu, &transient_cfg, &mut scratch)
                .unwrap();
            black_box((die.len(), die.v_die()[die.len() - 1]))
        })
    });
    let plan_ss = pdn
        .plan_transient_kernel(cfg.pdn_dt, KernelChoice::StateSpace)
        .unwrap();
    g.bench_function("transient_scoped_statespace_kernel", |b| {
        b.iter(|| {
            let die = pdn
                .transient_scoped(&plan_ss, &transient_cfg, &mut scratch)
                .unwrap();
            black_box((die.len(), die.v_die()[die.len() - 1]))
        })
    });
    g.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let domain = a72_domain();
    let cfg = RunConfig::fast();
    let kernel = arm_kernel();
    let mut runner = DomainRunner::new(&domain, cfg.clone()).unwrap();

    let mut g = c.benchmark_group("evaluation");
    // Allocating path: every run returns freshly allocated traces.
    g.bench_function("runner_run", |b| {
        b.iter(|| black_box(runner.run(&kernel, 1).unwrap().peak_to_peak()))
    });
    // Reuse path: one DomainRun recycled across evaluations.
    let mut run = DomainRun::empty();
    g.bench_function("runner_run_into_reused", |b| {
        b.iter(|| {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            black_box(run.peak_to_peak())
        })
    });
    g.finish();
}

fn bench_full_chain(c: &mut Criterion) {
    let domain = a72_domain();
    let cfg = RunConfig::fast();
    let kernel = arm_kernel();
    let mut runner = DomainRunner::new(&domain, cfg.clone()).unwrap();
    let bench = EmBench::new(0xBE7C);
    let shared = bench.share();

    let mut g = c.benchmark_group("full_chain");
    // Allocating path: fresh traces and spectra per measurement.
    g.bench_function("run_and_measure", |b| {
        b.iter(|| {
            let run = runner.run(&kernel, 1).unwrap();
            black_box(
                shared
                    .measure_in_band_seeded(&run, 50e6, 200e6, 3, 7)
                    .metric_dbm,
            )
        })
    });
    // Reuse path: the exact per-individual loop the GA runs — one
    // DomainRun plus one MeasureScratch checked out for every evaluation.
    let mut run = DomainRun::empty();
    let mut measure = MeasureScratch::new();
    g.bench_function("run_and_measure_reused_scratch", |b| {
        b.iter(|| {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            black_box(
                shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            )
        })
    });
    // Forced "before" path: LU back-substitution transients and a full
    // Bluestein FFT per sweep — what auto selection replaced.
    let mut lu_cfg = cfg.clone();
    lu_cfg.kernel = KernelChoice::Lu;
    lu_cfg.spectral = SpectralChoice::FullFft;
    let mut fft_bench = EmBench::new(0xBE7C);
    fft_bench.set_spectral(SpectralChoice::FullFft);
    let fft_shared = fft_bench.share();
    let mut lu_runner = DomainRunner::new(&domain, lu_cfg).unwrap();
    g.bench_function("run_and_measure_lu_fft", |b| {
        b.iter(|| {
            lu_runner.run_into(&kernel, 1, &mut run).unwrap();
            black_box(
                fft_shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            )
        })
    });
    // Batched path: four independent stimuli folded through the
    // state-space kernel together, then measured per lane.
    let entries = [(&kernel, 1usize), (&kernel, 2), (&kernel, 1), (&kernel, 2)];
    let mut outs = vec![DomainRun::empty(); entries.len()];
    let mut batch = BatchTransientScratch::new();
    g.bench_function("run_and_measure_batched_x4", |b| {
        b.iter(|| {
            runner
                .run_batch_into(&entries, &mut outs, &mut batch)
                .unwrap();
            let mut acc = 0.0;
            for out in &outs {
                acc += shared
                    .measure_in_band_seeded_with(out, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm;
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// The tentpole acceptance bench: the full per-individual chain with the
/// default [`NoopRecorder`](emvolt_obs::NoopRecorder) handle attached
/// must stay within 1% of the un-instrumented baseline
/// (`full_chain/run_and_measure_reused_scratch`), and the JSONL-enabled
/// path shows what tracing actually costs.
fn bench_telemetry(c: &mut Criterion) {
    use emvolt_obs::{JsonlRecorder, Telemetry};
    use std::sync::Arc;

    let domain = a72_domain();
    let cfg = RunConfig::fast();
    let kernel = arm_kernel();

    let mut g = c.benchmark_group("telemetry");

    // Disabled path: every hook present, every emission gated off. This
    // is exactly what un-flagged campaigns run.
    let noop = Telemetry::noop();
    let mut runner = DomainRunner::new_with(&domain, cfg.clone(), noop.clone()).unwrap();
    let bench = EmBench::new(0xBE7C);
    let shared = bench.share();
    let mut run = DomainRun::empty();
    let mut measure = MeasureScratch::new();
    measure.set_telemetry(noop);
    g.bench_function("full_chain_noop_recorder", |b| {
        b.iter(|| {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            black_box(
                shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            )
        })
    });

    // Enabled path: spans serialized per measurement into an in-memory
    // sink — the upper bound a `--telemetry` campaign pays per eval.
    let tel = Telemetry::new(Arc::new(JsonlRecorder::new(std::io::sink())));
    let mut runner = DomainRunner::new_with(&domain, cfg.clone(), tel.clone()).unwrap();
    let mut run = DomainRun::empty();
    let mut measure = MeasureScratch::new();
    measure.set_telemetry(tel);
    g.bench_function("full_chain_jsonl_to_sink", |b| {
        b.iter(|| {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            black_box(
                shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_solver,
    bench_evaluation,
    bench_full_chain,
    bench_telemetry
);
criterion_main!(benches);
