//! Backend-layer benchmark: the same reduced EM GA campaign through the
//! live chain, the recording wrapper, and a replayed trace.
//!
//! Replay answers every measurement from the JSONL trace without
//! touching the circuit solver, so `em_replay` is the floor cost of the
//! campaign logic itself (GA bookkeeping + telemetry + trace lookups);
//! the gap to `em_live` is what the simulation chain costs. `em_record`
//! measures the overhead of persisting the trace on top of live.

use criterion::{criterion_group, criterion_main, Criterion};
use emvolt_backend::{LiveBackend, RecordBackend, ReplayBackend};
use emvolt_bench::fixtures::a72_domain;
use emvolt_core::{generate_em_virus_on, VirusGenConfig};
use emvolt_ga::GaConfig;
use emvolt_platform::EmBench;
use std::path::{Path, PathBuf};

fn campaign_config() -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 8,
            generations: 4,
            seed: 0xBACC,
            ..GaConfig::default()
        },
        kernel_len: 20,
        samples_per_individual: 2,
        threads: 1,
        ..VirusGenConfig::default()
    }
}

fn live_backend(config: &VirusGenConfig) -> (LiveBackend, String) {
    let domain = a72_domain();
    let name = domain.name().to_owned();
    (
        LiveBackend::single(domain, EmBench::new(0xBACC), config.run.clone()),
        name,
    )
}

fn run_live() -> f64 {
    let config = campaign_config();
    let (mut backend, name) = live_backend(&config);
    generate_em_virus_on("bench", &mut backend, &name, &config, |_| {})
        .expect("campaign runs")
        .fitness
}

fn run_record(path: &Path) -> f64 {
    let config = campaign_config();
    let (live, name) = live_backend(&config);
    let mut backend = RecordBackend::create(live, path).expect("trace file opens");
    generate_em_virus_on("bench", &mut backend, &name, &config, |_| {})
        .expect("campaign runs")
        .fitness
}

fn run_replay(path: &Path) -> f64 {
    let config = campaign_config();
    let name = a72_domain().name().to_owned();
    let mut backend = ReplayBackend::open(path).expect("trace loads");
    generate_em_virus_on("bench", &mut backend, &name, &config, |_| {})
        .expect("campaign replays")
        .fitness
}

fn bench_backends(c: &mut Criterion) {
    let trace: PathBuf = std::env::temp_dir().join("emvolt-bench-backends.jsonl");
    // One recording up front feeds every replay iteration.
    let recorded = run_record(&trace);
    assert_eq!(
        recorded.to_bits(),
        run_replay(&trace).to_bits(),
        "replay must reproduce the recorded campaign bit-for-bit"
    );

    let mut g = c.benchmark_group("backends");
    g.sample_size(10);
    g.bench_function("em_live", |b| b.iter(run_live));
    g.bench_function("em_record", |b| b.iter(|| run_record(&trace)));
    g.bench_function("em_replay", |b| b.iter(|| run_replay(&trace)));
    g.finish();

    let _ = std::fs::remove_file(&trace);
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
