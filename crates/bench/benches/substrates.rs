//! Performance benchmarks for the simulation substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use emvolt_bench::fixtures::{a72_domain, arm_kernel, x86_kernel};
use emvolt_circuit::{Stimulus, TransientConfig};
use emvolt_cpu::{CoreModel, Cpu, SimConfig};
use emvolt_dsp::{fft_real, Spectrum, Window};
use emvolt_ga::{GaConfig, GaEngine, KernelRepresentation};
use emvolt_isa::{InstructionPool, Isa, OpClass};
use emvolt_pdn::{log_freqs, Pdn, PdnParams};
use emvolt_platform::RunConfig;

fn bench_circuit(c: &mut Criterion) {
    let mut g = c.benchmark_group("circuit");
    g.sample_size(20);

    let params = PdnParams::generic_mobile();
    g.bench_function("transient_10k_steps", |b| {
        let mut pdn = Pdn::new(params.clone(), 2);
        pdn.set_load(Stimulus::square(0.0, 1.0, 70e6));
        let cfg = TransientConfig::new(0.5e-9, 5e-6);
        b.iter(|| pdn.transient(&cfg).expect("transient runs"));
    });

    g.bench_function("ac_sweep_200_points", |b| {
        let pdn = Pdn::new(params.clone(), 2);
        let freqs = log_freqs(1e4, 1e9, 200);
        b.iter(|| pdn.impedance_sweep(&freqs).expect("sweep runs"));
    });
    g.finish();
}

fn bench_dsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsp");
    let signal: Vec<f64> = (0..16_384)
        .map(|i| (i as f64 * 0.1).sin() + (i as f64 * 0.03).cos())
        .collect();
    g.bench_function("fft_16k", |b| b.iter(|| fft_real(&signal)));
    g.bench_function("spectrum_16k_hann", |b| {
        b.iter(|| Spectrum::of_samples(&signal, 1e9, Window::Hann))
    });
    g.finish();
}

fn bench_cpu(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu");
    g.sample_size(20);
    let kernel = arm_kernel();
    let cfg = SimConfig::default();
    g.bench_function("a72_sim_4us", |b| {
        let cpu = Cpu::new(CoreModel::cortex_a72(), 1.2e9);
        b.iter(|| cpu.simulate(&kernel, &cfg).expect("sim runs"));
    });
    let x86 = x86_kernel();
    g.bench_function("athlon_sim_4us", |b| {
        let cpu = Cpu::new(CoreModel::athlon_ii(), 3.1e9);
        b.iter(|| cpu.simulate(&x86, &cfg).expect("sim runs"));
    });
    g.bench_function("functional_execute_200_iters", |b| {
        b.iter(|| emvolt_cpu::execute(&kernel, 200));
    });
    g.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("measurement_chain");
    g.sample_size(10);
    let domain = a72_domain();
    let kernel = arm_kernel();
    let cfg = RunConfig::fast();
    g.bench_function("domain_run_fast", |b| {
        b.iter(|| domain.run(&kernel, 2, &cfg).expect("run succeeds"));
    });
    g.bench_function("em_measure_30_samples", |b| {
        let run = domain.run(&kernel, 2, &cfg).expect("run succeeds");
        b.iter_batched(
            || emvolt_platform::EmBench::new(1),
            |mut bench| bench.measure(&run, 30),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_ga(c: &mut Criterion) {
    let mut g = c.benchmark_group("ga");
    g.sample_size(10);
    g.bench_function("ga_10_generations_toy_fitness", |b| {
        b.iter(|| {
            let pool = InstructionPool::default_for(Isa::ArmV8);
            let repr = KernelRepresentation::new(pool, 50);
            let mut engine = GaEngine::new(
                repr,
                GaConfig {
                    population: 20,
                    generations: 10,
                    ..GaConfig::default()
                },
            );
            engine.run(|k| k.class_fraction(OpClass::Simd), |_| {})
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_circuit,
    bench_dsp,
    bench_cpu,
    bench_chain,
    bench_ga
);
criterion_main!(benches);
