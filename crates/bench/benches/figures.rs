//! One Criterion benchmark per table/figure of the paper: each measures
//! the cost of regenerating that experiment's data at reduced scale, so
//! regressions in any part of the reproduction pipeline are visible
//! per-figure.

use criterion::{criterion_group, criterion_main, Criterion};
use emvolt_bench::fixtures::{a72_domain, arm_kernel};
use emvolt_circuit::{Stimulus, TransientConfig};
use emvolt_core::monitor::{capture_multi_domain, detect_signatures};
use emvolt_core::{fast_resonance_sweep, FastSweepConfig};
use emvolt_cpu::CoreModel;
use emvolt_dsp::{Spectrum, Window};
use emvolt_em::LoopAntenna;
use emvolt_ga::{GaConfig, GaEngine, KernelRepresentation};
use emvolt_inst::Vna;
use emvolt_isa::{kernels::padded_sweep_kernel, InstructionPool, Isa};
use emvolt_pdn::{log_freqs, Pdn, PdnParams};
use emvolt_platform::{
    a53_pdn, desktop_suite, lbm_kernel, spec2006_suite, AmdDesktop, EmBench, RunConfig, Scl,
    VoltageDomain,
};
use emvolt_vmin::{vmin_test, FailureModel, VminConfig};
use rand::{rngs::StdRng, SeedableRng};

fn quick_vmin() -> VminConfig {
    VminConfig {
        trials: 2,
        golden_iterations: 30,
        ..VminConfig::default()
    }
}

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Table 1: platform construction.
    g.bench_function("table1_platforms", |b| {
        b.iter(|| {
            let juno = emvolt_platform::JunoBoard::new();
            let amd = AmdDesktop::new();
            (juno.a72.core_count(), amd.domain.core_count())
        });
    });

    // Fig. 1(b): impedance sweep.
    g.bench_function("fig01b_impedance_sweep", |b| {
        let pdn = Pdn::new(PdnParams::generic_mobile(), 2);
        let freqs = log_freqs(1e3, 1e9, 150);
        b.iter(|| pdn.impedance_sweep(&freqs).expect("sweep"));
    });

    // Fig. 1(c): step response.
    g.bench_function("fig01c_step_response", |b| {
        let mut pdn = Pdn::new(PdnParams::generic_mobile(), 2);
        pdn.set_load(Stimulus::Step {
            t0: 50e-9,
            before: 0.0,
            after: 1.0,
        });
        let cfg = TransientConfig::new(0.5e-9, 1e-6);
        b.iter(|| pdn.transient(&cfg).expect("transient"));
    });

    // Fig. 2: resonant square-wave excitation.
    g.bench_function("fig02_resonant_excitation", |b| {
        let params = PdnParams::generic_mobile();
        let f = params.first_order_resonance_hz(2);
        let mut pdn = Pdn::new(params, 2);
        pdn.set_load(Stimulus::square(0.0, 1.0, f));
        let cfg = TransientConfig::new(0.5e-9, 2e-6).with_warmup(1e-6);
        b.iter(|| pdn.transient(&cfg).expect("transient"));
    });

    // Fig. 4: OC-DSO capture of a workload.
    g.bench_function("fig04_ocdso_capture", |b| {
        let domain = a72_domain();
        let run = domain
            .run(&arm_kernel(), 2, &RunConfig::fast())
            .expect("run");
        let scope = emvolt_inst::Oscilloscope::new(emvolt_inst::ScopeConfig::oc_dso());
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| scope.capture(&run.v_die, &mut rng));
    });

    // Fig. 6: antenna S11 sweep.
    g.bench_function("fig06_antenna_s11", |b| {
        let antenna = LoopAntenna::default();
        let vna = Vna::default();
        let freqs: Vec<f64> = (1..=200).map(|i| i as f64 * 2e7).collect();
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| vna.measure_s11(&antenna, &freqs, &mut rng));
    });

    // Figs. 7/12/17: one GA generation of EM-driven search (population
    // evaluation dominates).
    g.bench_function("fig07_ga_generation", |b| {
        let domain = a72_domain();
        b.iter(|| {
            let pool = InstructionPool::default_for(Isa::ArmV8);
            let repr = KernelRepresentation::new(pool, 50);
            let mut engine = GaEngine::new(
                repr,
                GaConfig {
                    population: 4,
                    generations: 2,
                    ..GaConfig::default()
                },
            );
            let mut bench = EmBench::new(7);
            engine.run(
                |k| match domain.run(k, 2, &RunConfig::fast()) {
                    Ok(run) => bench.measure(&run, 2).metric_dbm,
                    Err(_) => -200.0,
                },
                |_| {},
            )
        });
    });

    // Fig. 8: one SCL sweep point.
    g.bench_function("fig08_scl_point", |b| {
        let domain = a72_domain();
        let scl = Scl::default();
        b.iter(|| scl.excite(&domain, 69e6, &RunConfig::fast()).expect("scl"));
    });

    // Fig. 9: analyzer sweep vs OC-DSO FFT of the same run.
    g.bench_function("fig09_spectrum_comparison", |b| {
        let domain = a72_domain();
        let run = domain
            .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &RunConfig::fast())
            .expect("run");
        let scope = emvolt_inst::Oscilloscope::new(emvolt_inst::ScopeConfig::oc_dso());
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            let mut bench = EmBench::new(9);
            let sweep = bench.sweep(&run);
            let shot = scope.capture(&run.v_die, &mut rng);
            let spec = Spectrum::of_trace(&shot, Window::Hann);
            (
                sweep.peak_in_band(50e6, 200e6),
                spec.peak_in_band(50e6, 200e6),
            )
        });
    });

    // Figs. 10/14: one V_MIN campaign (SPEC workload).
    g.bench_function("fig10_vmin_campaign", |b| {
        let domain = a72_domain();
        let lbm = lbm_kernel(&InstructionPool::default_for(Isa::ArmV8), 114);
        let model = FailureModel::juno_a72();
        b.iter(|| vmin_test(&domain, &lbm, &model, &quick_vmin()).expect("vmin"));
    });

    // Figs. 11/13/16: one fast-sweep point per iteration.
    g.bench_function("fig11_fast_sweep_8_points", |b| {
        let domain = a72_domain();
        let cfg = FastSweepConfig {
            cpu_freqs_hz: (1..=8).map(|i| i as f64 * 150e6).collect(),
            samples_per_point: 2,
            ..FastSweepConfig::for_domain(&domain)
        };
        b.iter(|| {
            let mut bench = EmBench::new(11);
            fast_resonance_sweep(&domain, &mut bench, &cfg).expect("sweep")
        });
    });

    // Fig. 15: multi-domain capture + signature detection.
    g.bench_function("fig15_multidomain_capture", |b| {
        let a72 = a72_domain();
        let a53 = VoltageDomain::new("A53", CoreModel::cortex_a53(), a53_pdn(), 950e6);
        let cfg = RunConfig::fast();
        let r72 = a72
            .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)
            .expect("run");
        let r53 = a53
            .run(&padded_sweep_kernel(Isa::ArmV8, 8), 4, &cfg)
            .expect("run");
        b.iter(|| {
            let mut bench = EmBench::new(15);
            let reading = capture_multi_domain(&mut bench, &[&r72, &r53]);
            detect_signatures(&reading, -95.0, 4, 4e6, 10.0)
        });
    });

    // Fig. 18: one desktop-workload V_MIN point on the AMD platform.
    g.bench_function("fig18_amd_vmin_campaign", |b| {
        let amd = AmdDesktop::new();
        let prime95 = desktop_suite()
            .into_iter()
            .find(|w| w.name == "prime95")
            .expect("prime95 exists");
        let model = FailureModel::amd();
        let cfg = VminConfig {
            start_v: 1.4,
            floor_v: 1.05,
            loaded_cores: 4,
            ..quick_vmin()
        };
        b.iter(|| vmin_test(&amd.domain, &prime95.kernel, &model, &cfg).expect("vmin"));
    });

    // Table 2: virus metric extraction (IPC, loop/dominant frequency,
    // mix) for a fixed kernel.
    g.bench_function("table2_virus_analysis", |b| {
        let domain = a72_domain();
        let kernel = arm_kernel();
        let model = FailureModel::juno_a72();
        b.iter(|| {
            emvolt_core::analyze_virus(
                "bench",
                &domain,
                &kernel,
                &model,
                &quick_vmin(),
                &RunConfig::fast(),
            )
            .expect("analysis")
        });
    });

    // SPEC suite construction cost (workload substrate shared by Figs.
    // 4/10/14).
    g.bench_function("workload_suite_construction", |b| {
        b.iter(|| (spec2006_suite(Isa::ArmV8).len(), desktop_suite().len()));
    });

    g.finish();
}

criterion_group!(fig_benches, figures);
criterion_main!(fig_benches);
