//! Compares a freshly exported `BENCH_eval.json` against the committed
//! baseline and fails when the full-chain floor regresses.
//!
//! CI runs `export_bench` into a scratch directory and then:
//!
//! ```text
//! bench_gate BENCH_eval.json /tmp/bench/BENCH_eval.json [tolerance]
//! ```
//!
//! For every committed record whose name starts with `full_chain`, the
//! fresh run must contain the same record with
//! `min_ms <= committed_min_ms * tolerance` (default 1.5x — CI runners
//! are noisy and heterogeneous; the gate catches integer-factor
//! regressions like losing the state-space kernel or the band-Goertzel
//! path, not single-digit-percent drift). Missing records fail too, so
//! renaming an entry forces a deliberate baseline update.
//!
//! The gate also checks two structural invariants that survive machine
//! changes, both computed *within the fresh run* — same-machine ratios,
//! immune to runner speed:
//!
//! - `full_chain_baseline` (auto-selected fast path) must stay at least
//!   1.5x faster than `full_chain_lu_fft` (the forced general path);
//! - every `full_chain_batched_xN` record must amortize: its per-lane
//!   cost (`min_ms / N`, with `N` parsed from the record name) must be
//!   at most 0.75x the serial `full_chain_baseline` floor — i.e. the
//!   lane-major batched chain buys at least a 1.33x per-eval speedup;
//! - on hosts whose detected SIMD level is AVX2, the dispatched
//!   lane-major fold (`simd_fold_lanes_dispatch`) must beat the
//!   scalar-forced one (`simd_fold_lanes_scalar`) by at least 1.3x —
//!   losing runtime dispatch would silently degrade every chain while
//!   staying bit-identical. On narrower hosts the check logs a skip
//!   instead of failing: the floor is calibrated to 4-wide FMA;
//! - from the `BENCH_ga.json` written next to the fresh eval file, the
//!   engine-driven campaign checkpointing every batch
//!   (`checkpoint_overhead`) must stay within 3% of the legacy one-shot
//!   path (`ga_campaign_noop_recorder`) — the step-engine's snapshot
//!   and atomic-rename cost must never tax an uncheckpointed-equivalent
//!   campaign noticeably.

use serde::{DeError, Deserialize, Value};
use std::process::ExitCode;

/// `{name -> min_ms}` extracted from a bench-record array.
struct MinTimes(Vec<(String, f64)>);

impl MinTimes {
    fn get(&self, name: &str) -> Option<f64> {
        self.0.iter().find(|(n, _)| n == name).map(|&(_, t)| t)
    }
}

impl Deserialize for MinTimes {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let Value::Arr(items) = v else {
            return Err(DeError::new("expected a top-level array of records"));
        };
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let name = match item.field_value("name")? {
                Value::Str(s) => s.clone(),
                other => {
                    return Err(DeError::new(format!(
                        "name: expected string, got {other:?}"
                    )))
                }
            };
            let min_ms = match item.field_value("min_ms")? {
                Value::Num(n) => *n,
                other => {
                    return Err(DeError::new(format!(
                        "min_ms: expected number, got {other:?}"
                    )))
                }
            };
            out.push((name, min_ms));
        }
        Ok(MinTimes(out))
    }
}

fn load(path: &str) -> MinTimes {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// Ratio of the forced general path to the auto fast path, if both were
/// recorded. Machine-independent: both numbers come from the same run.
fn fast_path_speedup(times: &MinTimes) -> Option<f64> {
    let general = times.get("full_chain_lu_fft")?;
    let fast = times.get("full_chain_baseline")?;
    Some(general / fast)
}

/// `(name, lanes, per_lane_ms)` for every `full_chain_batched_xN`
/// record, with `N` parsed from the name so the gate needs no schema
/// beyond `{name, min_ms}`.
fn batched_per_lane(times: &MinTimes) -> Vec<(String, usize, f64)> {
    times
        .0
        .iter()
        .filter_map(|(name, min_ms)| {
            let lanes: usize = name.strip_prefix("full_chain_batched_x")?.parse().ok()?;
            Some((name.clone(), lanes, min_ms / lanes as f64))
        })
        .collect()
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_eval.json".to_owned());
    let fresh_path = args
        .next()
        .unwrap_or_else(|| usage("missing fresh BENCH_eval.json path"));
    let tolerance: f64 = args
        .next()
        .map(|t| t.parse().unwrap_or_else(|_| usage("bad tolerance")))
        .unwrap_or(1.5);

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let mut failed = false;

    for (name, base_min) in baseline
        .0
        .iter()
        .filter(|(n, _)| n.starts_with("full_chain"))
    {
        match fresh.get(name) {
            Some(fresh_min) if fresh_min <= base_min * tolerance => {
                eprintln!("ok   {name:<28} {fresh_min:.3} ms (baseline {base_min:.3} ms)");
            }
            Some(fresh_min) => {
                eprintln!(
                    "FAIL {name:<28} {fresh_min:.3} ms exceeds {base_min:.3} ms * {tolerance}"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL {name:<28} missing from {fresh_path}");
                failed = true;
            }
        }
    }

    // Same-run speedup floor: insensitive to absolute runner speed.
    const SPEEDUP_FLOOR: f64 = 1.5;
    match fast_path_speedup(&fresh) {
        Some(ratio) if ratio >= SPEEDUP_FLOOR => {
            eprintln!("ok   lu_fft/baseline speedup {ratio:.2}x (floor {SPEEDUP_FLOOR}x)");
        }
        Some(ratio) => {
            eprintln!("FAIL lu_fft/baseline speedup {ratio:.2}x below floor {SPEEDUP_FLOOR}x");
            failed = true;
        }
        None => {
            eprintln!("FAIL fresh run lacks full_chain_lu_fft/full_chain_baseline records");
            failed = true;
        }
    }

    // Same-run amortization floor: each lane of a batched evaluation
    // must cost at most this fraction of a serial evaluation.
    const AMORTIZATION_CEILING: f64 = 0.75;
    let batched = batched_per_lane(&fresh);
    if batched.is_empty() {
        eprintln!("FAIL fresh run lacks full_chain_batched_xN records");
        failed = true;
    }
    match fresh.get("full_chain_baseline") {
        Some(serial) => {
            for (name, lanes, per_lane) in &batched {
                let ratio = per_lane / serial;
                if ratio <= AMORTIZATION_CEILING {
                    eprintln!(
                        "ok   {name:<28} {per_lane:.3} ms/lane x{lanes} = {ratio:.2}x serial \
                         (ceiling {AMORTIZATION_CEILING}x)"
                    );
                } else {
                    eprintln!(
                        "FAIL {name:<28} {per_lane:.3} ms/lane x{lanes} = {ratio:.2}x serial \
                         exceeds {AMORTIZATION_CEILING}x"
                    );
                    failed = true;
                }
            }
        }
        None if !batched.is_empty() => {
            eprintln!("FAIL fresh run lacks full_chain_baseline for the amortization gate");
            failed = true;
        }
        None => {}
    }

    // Same-run SIMD dispatch floor, gated on host capability: the
    // numbers in the fresh file were produced on this machine, so
    // detection here matches the conditions they were measured under.
    const SIMD_SPEEDUP_FLOOR: f64 = 1.3;
    let simd_ratio = (|| {
        let scalar = fresh.get("simd_fold_lanes_scalar")?;
        let dispatch = fresh.get("simd_fold_lanes_dispatch")?;
        Some(scalar / dispatch)
    })();
    if emvolt_simd::detected_level() == emvolt_simd::SimdLevel::Avx2 {
        match simd_ratio {
            Some(ratio) if ratio >= SIMD_SPEEDUP_FLOOR => {
                eprintln!(
                    "ok   simd fold dispatch/scalar speedup {ratio:.2}x \
                     (floor {SIMD_SPEEDUP_FLOOR}x on avx2)"
                );
            }
            Some(ratio) => {
                eprintln!(
                    "FAIL simd fold dispatch/scalar speedup {ratio:.2}x \
                     below floor {SIMD_SPEEDUP_FLOOR}x on avx2"
                );
                failed = true;
            }
            None => {
                eprintln!("FAIL fresh run lacks simd_fold_lanes_* records");
                failed = true;
            }
        }
    } else {
        eprintln!(
            "skip simd fold speedup floor: host dispatches {} (calibrated for avx2)",
            emvolt_simd::detected_level().as_str()
        );
    }

    // Same-run checkpoint-overhead ceiling, from the GA-scale file that
    // `export_bench` writes beside the eval file: the engine-driven
    // campaign snapshotting after every batch against the legacy
    // one-shot entry point. Both floors come from the same run on the
    // same machine, so the ratio is immune to runner speed.
    const CHECKPOINT_CEILING: f64 = 1.03;
    let ga_path = std::path::Path::new(&fresh_path)
        .with_file_name("BENCH_ga.json")
        .to_string_lossy()
        .into_owned();
    let ga = load(&ga_path);
    match (
        ga.get("checkpoint_overhead"),
        ga.get("ga_campaign_noop_recorder"),
    ) {
        (Some(engine), Some(legacy)) => {
            let ratio = engine / legacy;
            if ratio <= CHECKPOINT_CEILING {
                eprintln!(
                    "ok   checkpoint_overhead        {engine:.3} ms = {ratio:.3}x legacy \
                     one-shot (ceiling {CHECKPOINT_CEILING}x)"
                );
            } else {
                eprintln!(
                    "FAIL checkpoint_overhead        {engine:.3} ms = {ratio:.3}x legacy \
                     one-shot exceeds {CHECKPOINT_CEILING}x"
                );
                failed = true;
            }
        }
        _ => {
            eprintln!("FAIL {ga_path} lacks checkpoint_overhead/ga_campaign_noop_recorder records");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}\nusage: bench_gate <committed.json> <fresh.json> [tolerance]");
    std::process::exit(2);
}
