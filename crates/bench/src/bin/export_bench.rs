//! Exports machine-readable benchmark numbers to `BENCH_eval.json` and
//! `BENCH_ga.json` at the repository root.
//!
//! The criterion benches print to stdout only; CI and EXPERIMENTS.md
//! want stable JSON artifacts, so this binary re-times the same
//! workloads with `std::time::Instant` and writes
//! `{name, samples, min_ms, mean_ms, max_ms}` records. Two headline
//! comparisons: `full_chain_baseline` (the default auto-selected
//! state-space + band-Goertzel path) against `full_chain_lu_fft` (the
//! general LU solve + full Bluestein FFT it replaced), and
//! `full_chain_noop_recorder` (telemetry hooks present, everything
//! gated off) against the baseline — the telemetry tentpole requires
//! the noop path within 1% of it.
//!
//! The GA-scale pair `checkpoint_overhead` / `ga_campaign_noop_recorder`
//! times the engine-driven campaign checkpointing every batch against
//! the legacy one-shot path — the step-engine tentpole requires the
//! checkpointed path within 3% of it, which `bench_gate` enforces.
//!
//! `bench_gate` consumes the `full_chain_*` records, so warmup must be
//! long enough that min_ms is a stable floor, not a cold-cache draw.
//! The `simd_fold_lanes_*` pair times the dispatched lane-major fold
//! against the same fold forced to the scalar tier — the same-run ratio
//! `bench_gate` holds a floor on for hosts with AVX2.
//!
//! Besides overwriting the two snapshot files, every run appends one
//! line to `BENCH_history.jsonl` in the same directory — the trajectory
//! of the floors across commits, keyed by the run stamp and the
//! dispatched SIMD level.
//!
//! Usage: `export_bench [output_dir] [stamp]` (default `.`; the stamp
//! defaults to the unix time in seconds — pass one explicitly to keep
//! reproducing runs, e.g. in tests, off the wall clock).

use emvolt_backend::LiveBackend;
use emvolt_bench::fixtures::{a72_domain, arm_kernel};
use emvolt_core::{generate_em_virus, generate_em_virus_resumable, VirusGenConfig};
use emvolt_engine::DriveOptions;
use emvolt_ga::GaConfig;
use emvolt_obs::{JsonlRecorder, NoopRecorder, Telemetry, WaveDb};
use emvolt_platform::{
    BatchTransientScratch, DomainRun, DomainRunner, EmBench, KernelChoice, MeasureScratch,
    RunConfig, SpectralChoice,
};
use serde::Value;
use std::sync::Arc;
use std::time::Instant;

struct Stats {
    name: &'static str,
    samples: usize,
    /// Individuals evaluated per timed iteration; batched entries set
    /// this above 1 and additionally export `ms_per_lane = min_ms /
    /// lanes`, the number the amortization gate compares against the
    /// serial chain.
    lanes: usize,
    min_ms: f64,
    mean_ms: f64,
    max_ms: f64,
}

fn stats_of(name: &'static str, times: &[f64]) -> Stats {
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    Stats {
        name,
        samples: times.len(),
        lanes: 1,
        min_ms: min,
        mean_ms: mean,
        max_ms: max,
    }
}

/// Times `f` over `samples` iterations after `warmup` discarded ones.
fn time_ms(name: &'static str, warmup: usize, samples: usize, mut f: impl FnMut()) -> Stats {
    for _ in 0..warmup {
        f();
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    stats_of(name, &times)
}

/// Times `a` and `b` in alternating rounds, so both records sample the
/// same machine conditions. Sequentially-timed records each see a
/// different slice of a drifting CPU clock — a few percent here, which
/// swamps any gate comparing the two as a ratio (`bench_gate` holds
/// `checkpoint_overhead` within 3% of `ga_campaign_noop_recorder`).
fn time_pair_ms(
    name_a: &'static str,
    name_b: &'static str,
    warmup: usize,
    samples: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (Stats, Stats) {
    for _ in 0..warmup {
        a();
        b();
    }
    let mut times_a = Vec::with_capacity(samples);
    let mut times_b = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        a();
        times_a.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        b();
        times_b.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (stats_of(name_a, &times_a), stats_of(name_b, &times_b))
}

fn to_value(records: &[Stats]) -> Value {
    Value::Arr(
        records
            .iter()
            .map(|s| {
                let mut obj = vec![
                    ("name".to_owned(), Value::Str(s.name.to_owned())),
                    ("samples".to_owned(), Value::Num(s.samples as f64)),
                    ("min_ms".to_owned(), Value::Num(s.min_ms)),
                    ("mean_ms".to_owned(), Value::Num(s.mean_ms)),
                    ("max_ms".to_owned(), Value::Num(s.max_ms)),
                ];
                if s.lanes > 1 {
                    obj.push(("lanes".to_owned(), Value::Num(s.lanes as f64)));
                    obj.push((
                        "ms_per_lane".to_owned(),
                        Value::Num(s.min_ms / s.lanes as f64),
                    ));
                }
                Value::Obj(obj)
            })
            .collect(),
    )
}

/// The vendored `Value` has no blanket `Serialize` impl; this newtype
/// hands a prebuilt tree to the serializer.
struct Raw(Value);

impl serde::Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn write_json(dir: &str, file: &str, records: &[Stats]) {
    let path = format!("{dir}/{file}");
    let json =
        serde_json::to_string_pretty(&Raw(to_value(records))).expect("serialize bench records");
    std::fs::write(&path, json + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("wrote {path}");
}

/// One full-chain evaluation closure over reusable scratch: the exact
/// per-individual loop the GA pays.
fn eval_records() -> Vec<Stats> {
    let domain = a72_domain();
    let cfg = RunConfig::fast();
    let kernel = arm_kernel();
    let bench = EmBench::new(0xBE7C);
    let shared = bench.share();
    // Warmup long enough to fault in code, warm caches, and settle the
    // allocator before any timed sample: without it min-to-max spread
    // ran 2x and min_ms was not a gateable floor.
    const WARMUP: usize = 50;
    const SAMPLES: usize = 40;

    let mut records = Vec::new();

    // Reference "before" path: general LU back-substitution per step and
    // a full Bluestein FFT per sweep, both forced. This is what every
    // chain paid before the structure-exploiting kernels landed; keeping
    // it timed records the before/after trajectory in every export.
    {
        let mut lu_cfg = cfg.clone();
        lu_cfg.kernel = KernelChoice::Lu;
        lu_cfg.spectral = SpectralChoice::FullFft;
        let mut fft_bench = EmBench::new(0xBE7C);
        fft_bench.set_spectral(SpectralChoice::FullFft);
        let fft_shared = fft_bench.share();
        let mut runner = DomainRunner::new(&domain, lu_cfg).unwrap();
        let mut run = DomainRun::empty();
        let mut measure = MeasureScratch::new();
        records.push(time_ms("full_chain_lu_fft", WARMUP, SAMPLES, || {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            std::hint::black_box(
                fft_shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            );
        }));
    }

    // Baseline: plain constructors, no telemetry argument anywhere. Auto
    // selection resolves to the state-space kernel + band Goertzel on
    // this workload; this is the entry `bench_gate` holds the line on.
    {
        let mut runner = DomainRunner::new(&domain, cfg.clone()).unwrap();
        let mut run = DomainRun::empty();
        let mut measure = MeasureScratch::new();
        records.push(time_ms("full_chain_baseline", WARMUP, SAMPLES, || {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            std::hint::black_box(
                shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            );
        }));
    }

    // Batched: L individuals stepped through the lane-major transient
    // fold together, then measured through the multi-lane Goertzel +
    // shared EM transfer path in one call. `ms_per_lane` is the per-eval
    // cost the amortization gate holds against the serial baseline.
    for &(name, lanes) in &[
        ("full_chain_batched_x4", 4usize),
        ("full_chain_batched_x8", 8),
    ] {
        let mut runner = DomainRunner::new(&domain, cfg.clone()).unwrap();
        let entries: Vec<(&emvolt_isa::Kernel, usize)> =
            (0..lanes).map(|i| (&kernel, 1 + i % 2)).collect();
        let seeds = vec![7u64; lanes];
        let mut outs = vec![DomainRun::empty(); lanes];
        let mut batch = BatchTransientScratch::new();
        let mut measure = MeasureScratch::new();
        let mut stats = time_ms(name, WARMUP, SAMPLES, || {
            let readings = runner
                .run_measure_batch_into(
                    &entries,
                    50e6,
                    200e6,
                    3,
                    &seeds,
                    &shared,
                    &mut outs,
                    &mut batch,
                    &mut measure,
                )
                .unwrap();
            for reading in &readings {
                std::hint::black_box(reading.metric_dbm);
            }
        });
        stats.lanes = lanes;
        records.push(stats);
    }

    // SIMD dispatch microbench: the lane-major response-column fold —
    // the innermost per-step loop of the batched transient — at the
    // dispatched level against the scalar tier, same shapes, same run.
    // The vectors differ only in instruction selection (bit-identical
    // results), so the min-time ratio isolates the SIMD payoff from
    // every other chain cost; `bench_gate` holds a floor on it.
    {
        const N_NODES: usize = 16;
        const N_INPUTS: usize = 12;
        const LANES: usize = 8;
        // One fold is ~1.5k flops; repeat enough that a sample dwarfs
        // timer granularity.
        const REPS: usize = 4000;
        let cols: Vec<f64> = (0..N_NODES * N_INPUTS)
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let inputs: Vec<f64> = (0..N_INPUTS * LANES)
            .map(|i| (i as f64 * 0.73).cos())
            .collect();
        let mut xn = vec![0.0; N_NODES * LANES];
        for (name, level) in [
            ("simd_fold_lanes_dispatch", emvolt_simd::level()),
            ("simd_fold_lanes_scalar", emvolt_simd::SimdLevel::Scalar),
        ] {
            records.push(time_ms(name, WARMUP, SAMPLES, || {
                for _ in 0..REPS {
                    level.fold_cols_lanes(&cols, N_NODES, &inputs, LANES, &mut xn);
                }
                std::hint::black_box(&mut xn);
            }));
        }
    }

    // Noop recorder: hooks live, emission gated off.
    {
        let noop = Telemetry::noop();
        let mut runner = DomainRunner::new_with(&domain, cfg.clone(), noop.clone()).unwrap();
        let mut run = DomainRun::empty();
        let mut measure = MeasureScratch::new();
        measure.set_telemetry(noop);
        records.push(time_ms("full_chain_noop_recorder", WARMUP, SAMPLES, || {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            std::hint::black_box(
                shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            );
        }));
    }

    // JSONL recorder to an in-memory sink: the enabled-path upper bound.
    {
        let tel = Telemetry::new(Arc::new(JsonlRecorder::new(std::io::sink())));
        let mut runner = DomainRunner::new_with(&domain, cfg.clone(), tel.clone()).unwrap();
        let mut run = DomainRun::empty();
        let mut measure = MeasureScratch::new();
        measure.set_telemetry(tel);
        records.push(time_ms("full_chain_jsonl_to_sink", WARMUP, SAMPLES, || {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            std::hint::black_box(
                shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            );
        }));
    }

    // Wave sink attached: the full chain streaming every probed waveform
    // (core current, issue slots, die voltage, package current, swept-bin
    // readings) into an in-memory WaveDb — the enabled upper bound the
    // `--trace-vcd` flag pays. With the sink absent the chain must stay
    // within 1% of `full_chain_baseline`, which `full_chain_noop_recorder`
    // above measures (the noop handle also carries the inert wave sink).
    {
        let db = Arc::new(WaveDb::new());
        let tel = Telemetry::with_waves(Arc::new(NoopRecorder), db);
        let mut runner = DomainRunner::new_with(&domain, cfg.clone(), tel.clone()).unwrap();
        let mut run = DomainRun::empty();
        let mut measure = MeasureScratch::new();
        measure.set_telemetry(tel);
        records.push(time_ms("wavetrace_overhead", WARMUP, SAMPLES, || {
            runner.run_into(&kernel, 1, &mut run).unwrap();
            std::hint::black_box(
                shared
                    .measure_in_band_seeded_with(&run, 50e6, 200e6, 3, 7, &mut measure)
                    .metric_dbm,
            );
        }));
    }

    records
}

fn ga_config(telemetry: Telemetry) -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 6,
            generations: 3,
            ..GaConfig::default()
        },
        kernel_len: 16,
        samples_per_individual: 3,
        threads: 1,
        telemetry,
        ..VirusGenConfig::default()
    }
}

fn ga_records() -> Vec<Stats> {
    let domain = a72_domain();
    const WARMUP: usize = 3;
    const SAMPLES: usize = 5;

    // Engine-driven campaign snapshotting its state to disk after every
    // absorbed batch: the price of `--checkpoint PATH:1`, the tightest
    // cadence the CLI accepts. The legacy one-shot entry
    // (`ga_campaign_noop_recorder`) is a thin driver over the same
    // engine with checkpointing off, so the ratio of the two floors —
    // sampled in alternating rounds — isolates the snapshot stash +
    // debounced render/write cost; `bench_gate` holds it within 3%.
    let path = std::env::temp_dir().join(format!(
        "emvolt_bench_checkpoint_{}.jsonl",
        std::process::id()
    ));
    // More rounds than the solo records: the gate compares the two
    // floors as a ratio, and occasional multi-ms filesystem stalls on
    // the checkpoint side need enough samples for the floor to dodge
    // them.
    const PAIR_SAMPLES: usize = 15;
    let (noop, checkpoint) = time_pair_ms(
        "ga_campaign_noop_recorder",
        "checkpoint_overhead",
        WARMUP,
        PAIR_SAMPLES,
        || {
            let mut bench = EmBench::new(11);
            let cfg = ga_config(Telemetry::noop());
            std::hint::black_box(
                generate_em_virus("bench", &domain, &mut bench, &cfg)
                    .unwrap()
                    .fitness,
            );
        },
        || {
            let cfg = ga_config(Telemetry::noop());
            let mut backend =
                LiveBackend::single(domain.clone(), EmBench::new(11), cfg.run.clone());
            let opts = DriveOptions {
                checkpoint: Some(path.clone()),
                checkpoint_every: 1,
                ..DriveOptions::default()
            };
            let virus =
                generate_em_virus_resumable("bench", &mut backend, "A72", &cfg, &opts, |_| {})
                    .unwrap()
                    .expect("no batch limit, so the drive runs to completion");
            std::hint::black_box(virus.fitness);
        },
    );
    std::fs::remove_file(&path).ok();

    let mut records = vec![noop];
    records.push(time_ms(
        "ga_campaign_jsonl_to_sink",
        WARMUP,
        SAMPLES,
        || {
            let mut bench = EmBench::new(11);
            let tel = Telemetry::new(Arc::new(JsonlRecorder::new(std::io::sink())));
            let cfg = ga_config(tel);
            std::hint::black_box(
                generate_em_virus("bench", &domain, &mut bench, &cfg)
                    .unwrap()
                    .fitness,
            );
        },
    ));
    records.push(checkpoint);
    records
}

/// One `BENCH_history.jsonl` line: the run stamp, the dispatched SIMD
/// level, and every record's floor. Appending (never rewriting) keeps
/// the trajectory of the numbers across commits greppable without
/// archaeology through git history of the snapshot files.
fn append_history(dir: &str, stamp: &str, eval: &[Stats], ga: &[Stats]) {
    let floors = |records: &[Stats]| {
        Value::Obj(
            records
                .iter()
                .map(|s| (s.name.to_owned(), Value::Num(s.min_ms)))
                .collect(),
        )
    };
    let line = Value::Obj(vec![
        ("stamp".to_owned(), Value::Str(stamp.to_owned())),
        (
            "simd".to_owned(),
            Value::Str(emvolt_simd::level().as_str().to_owned()),
        ),
        ("eval_min_ms".to_owned(), floors(eval)),
        ("ga_min_ms".to_owned(), floors(ga)),
    ]);
    let json = serde_json::to_string(&Raw(line)).expect("serialize history line");
    let path = format!("{dir}/BENCH_history.jsonl");
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .unwrap_or_else(|e| panic!("open {path}: {e}"));
    writeln!(file, "{json}").unwrap_or_else(|e| panic!("append {path}: {e}"));
    eprintln!("appended {path}");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args.next().unwrap_or_else(|| ".".to_owned());
    let stamp = args.next().unwrap_or_else(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs().to_string())
            .unwrap_or_else(|_| "pre-epoch".to_owned())
    });
    let eval = eval_records();
    for s in &eval {
        eprintln!(
            "{:<28} min {:.3} ms  mean {:.3} ms  max {:.3} ms",
            s.name, s.min_ms, s.mean_ms, s.max_ms
        );
    }
    write_json(&dir, "BENCH_eval.json", &eval);

    let ga = ga_records();
    for s in &ga {
        eprintln!(
            "{:<28} min {:.3} ms  mean {:.3} ms  max {:.3} ms",
            s.name, s.min_ms, s.mean_ms, s.max_ms
        );
    }
    write_json(&dir, "BENCH_ga.json", &ga);

    append_history(&dir, &stamp, &eval, &ga);
}
