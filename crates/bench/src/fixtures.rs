//! Shared benchmark fixtures.

use emvolt_cpu::CoreModel;
use emvolt_isa::{InstructionPool, Isa, Kernel};
use emvolt_platform::{a72_pdn, VoltageDomain};
use rand::{rngs::StdRng, SeedableRng};

/// A deterministic 50-instruction ARM kernel.
pub fn arm_kernel() -> Kernel {
    let pool = InstructionPool::default_for(Isa::ArmV8);
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    pool.random_kernel(50, &mut rng)
}

/// A deterministic 50-instruction x86 kernel.
pub fn x86_kernel() -> Kernel {
    let pool = InstructionPool::default_for(Isa::X86_64);
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    pool.random_kernel(50, &mut rng)
}

/// The calibrated A72 domain.
pub fn a72_domain() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}
