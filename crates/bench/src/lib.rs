//! # emvolt-bench
//!
//! Criterion benchmarks for the emvolt workspace live in `benches/`; this
//! library only hosts shared fixtures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fixtures;
