//! High-level façade: one object that characterizes a voltage domain
//! end-to-end with the EM methodology.

use crate::campaigns::{fast_resonance_sweep_resumable, generate_em_virus_resumable};
use crate::fast_sweep::{fast_resonance_sweep_on, FastSweepConfig, FastSweepResult};
use crate::ga_virus::{generate_em_virus_on, Virus, VirusGenConfig};
use crate::report::{analyze_virus, VirusReport};
use emvolt_backend::{LiveBackend, MeasurementBackend};
use emvolt_engine::DriveOptions;
use emvolt_platform::{DomainError, EmBench, RunConfig, VoltageDomain};
use emvolt_vmin::{FailureModel, VminConfig};

/// An EM-based characterization session for one voltage domain — the
/// paper's complete flow: find the resonance quickly, evolve a virus,
/// quantify the margin.
///
/// Generic over the [`MeasurementBackend`], defaulting to the live
/// simulated chain: the same session runs against a recording wrapper or
/// a replayed trace via [`Characterization::with_backend`].
#[derive(Debug)]
pub struct Characterization<B: MeasurementBackend = LiveBackend> {
    backend: B,
    domain_name: String,
}

impl Characterization<LiveBackend> {
    /// Aims the EM rig at `domain` (seed controls measurement noise).
    pub fn new(domain: VoltageDomain, seed: u64) -> Self {
        let domain_name = domain.name().to_owned();
        Characterization {
            backend: LiveBackend::single(domain, EmBench::new(seed), RunConfig::fast()),
            domain_name,
        }
    }

    /// The domain under characterization.
    pub fn domain(&self) -> &VoltageDomain {
        self.backend
            .domain(&self.domain_name)
            .expect("constructed with this domain")
    }

    /// Mutable access (power gating, DVFS) between steps.
    pub fn domain_mut(&mut self) -> &mut VoltageDomain {
        self.backend
            .domain_mut(&self.domain_name)
            .expect("constructed with this domain")
    }

    /// §5.2 + Table 2: V_MIN and metrics for a virus.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn report(
        &self,
        virus: &Virus,
        failure: &FailureModel,
        vmin_cfg: &VminConfig,
    ) -> Result<VirusReport, DomainError> {
        analyze_virus(
            &virus.name,
            self.domain(),
            &virus.kernel,
            failure,
            vmin_cfg,
            &RunConfig::fast(),
        )
    }
}

impl<B: MeasurementBackend> Characterization<B> {
    /// Runs the session over an arbitrary backend — e.g. a
    /// [`RecordBackend`](emvolt_backend::RecordBackend) persisting the
    /// campaign or a [`ReplayBackend`](emvolt_backend::ReplayBackend)
    /// serving a recorded one.
    pub fn with_backend(backend: B, domain_name: impl Into<String>) -> Self {
        Characterization {
            backend,
            domain_name: domain_name.into(),
        }
    }

    /// The measurement backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Consumes the session, returning the backend (e.g. to flush a
    /// recording or recover the bench).
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// §5.3: fast loop-frequency sweep; returns the resonance estimate.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn find_resonance_fast(&mut self) -> Result<FastSweepResult, DomainError> {
        let info = self.backend.domain_info(&self.domain_name).ok_or_else(|| {
            DomainError::Backend(format!("unknown domain `{}`", self.domain_name))
        })?;
        let cfg = FastSweepConfig::for_max_frequency(info.max_frequency_hz);
        fast_resonance_sweep_on(&mut self.backend, &self.domain_name, &cfg)
    }

    /// §5.1: EM-driven GA virus generation.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn generate_virus(
        &mut self,
        name: &str,
        config: &VirusGenConfig,
    ) -> Result<Virus, DomainError> {
        generate_em_virus_on(name, &mut self.backend, &self.domain_name, config, |_| {})
    }

    /// [`Characterization::find_resonance_fast`] with checkpoint/resume
    /// wiring: `None` when the batch limit interrupted the sweep.
    ///
    /// # Errors
    ///
    /// As for [`Characterization::find_resonance_fast`], plus checkpoint
    /// verification/IO failures.
    pub fn find_resonance_fast_resumable(
        &mut self,
        opts: &DriveOptions,
    ) -> Result<Option<FastSweepResult>, DomainError> {
        let info = self.backend.domain_info(&self.domain_name).ok_or_else(|| {
            DomainError::Backend(format!("unknown domain `{}`", self.domain_name))
        })?;
        let cfg = FastSweepConfig::for_max_frequency(info.max_frequency_hz);
        fast_resonance_sweep_resumable(&mut self.backend, &self.domain_name, &cfg, opts)
    }

    /// [`Characterization::generate_virus`] with checkpoint/resume
    /// wiring: `None` when the batch limit interrupted the campaign.
    ///
    /// # Errors
    ///
    /// As for [`Characterization::generate_virus`], plus checkpoint
    /// verification/IO failures.
    pub fn generate_virus_resumable(
        &mut self,
        name: &str,
        config: &VirusGenConfig,
        opts: &DriveOptions,
    ) -> Result<Option<Virus>, DomainError> {
        generate_em_virus_resumable(
            name,
            &mut self.backend,
            &self.domain_name,
            config,
            opts,
            |_| {},
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_ga::GaConfig;
    use emvolt_platform::a72_pdn;

    #[test]
    fn full_flow_smoke_test() {
        let domain =
            emvolt_platform::VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let mut session = Characterization::new(domain, 9);
        let sweep = session.find_resonance_fast().unwrap();
        assert!(sweep.resonance_hz > 40e6 && sweep.resonance_hz < 120e6);

        let cfg = VirusGenConfig {
            ga: GaConfig {
                population: 6,
                generations: 4,
                ..GaConfig::default()
            },
            kernel_len: 16,
            samples_per_individual: 2,
            ..VirusGenConfig::default()
        };
        let virus = session.generate_virus("smoke", &cfg).unwrap();
        let report = session
            .report(
                &virus,
                &FailureModel::juno_a72(),
                &VminConfig {
                    trials: 2,
                    golden_iterations: 30,
                    ..VminConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.loop_instructions, 16);
    }
}
