//! High-level façade: one object that characterizes a voltage domain
//! end-to-end with the EM methodology.

use crate::fast_sweep::{fast_resonance_sweep, FastSweepConfig, FastSweepResult};
use crate::ga_virus::{generate_em_virus, Virus, VirusGenConfig};
use crate::report::{analyze_virus, VirusReport};
use emvolt_platform::{DomainError, EmBench, VoltageDomain};
use emvolt_vmin::{FailureModel, VminConfig};

/// An EM-based characterization session for one voltage domain — the
/// paper's complete flow: find the resonance quickly, evolve a virus,
/// quantify the margin.
#[derive(Debug)]
pub struct Characterization {
    domain: VoltageDomain,
    bench: EmBench,
}

impl Characterization {
    /// Aims the EM rig at `domain` (seed controls measurement noise).
    pub fn new(domain: VoltageDomain, seed: u64) -> Self {
        Characterization {
            domain,
            bench: EmBench::new(seed),
        }
    }

    /// The domain under characterization.
    pub fn domain(&self) -> &VoltageDomain {
        &self.domain
    }

    /// Mutable access (power gating, DVFS) between steps.
    pub fn domain_mut(&mut self) -> &mut VoltageDomain {
        &mut self.domain
    }

    /// §5.3: fast loop-frequency sweep; returns the resonance estimate.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn find_resonance_fast(&mut self) -> Result<FastSweepResult, DomainError> {
        let cfg = FastSweepConfig::for_domain(&self.domain);
        fast_resonance_sweep(&self.domain, &mut self.bench, &cfg)
    }

    /// §5.1: EM-driven GA virus generation.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn generate_virus(
        &mut self,
        name: &str,
        config: &VirusGenConfig,
    ) -> Result<Virus, DomainError> {
        generate_em_virus(name, &self.domain, &mut self.bench, config)
    }

    /// §5.2 + Table 2: V_MIN and metrics for a virus.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn report(
        &self,
        virus: &Virus,
        failure: &FailureModel,
        vmin_cfg: &VminConfig,
    ) -> Result<VirusReport, DomainError> {
        analyze_virus(
            &virus.name,
            &self.domain,
            &virus.kernel,
            failure,
            vmin_cfg,
            &emvolt_platform::RunConfig::fast(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_ga::GaConfig;
    use emvolt_platform::a72_pdn;

    #[test]
    fn full_flow_smoke_test() {
        let domain =
            emvolt_platform::VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let mut session = Characterization::new(domain, 9);
        let sweep = session.find_resonance_fast().unwrap();
        assert!(sweep.resonance_hz > 40e6 && sweep.resonance_hz < 120e6);

        let cfg = VirusGenConfig {
            ga: GaConfig {
                population: 6,
                generations: 4,
                ..GaConfig::default()
            },
            kernel_len: 16,
            samples_per_individual: 2,
            ..VirusGenConfig::default()
        };
        let virus = session.generate_virus("smoke", &cfg).unwrap();
        let report = session
            .report(
                &virus,
                &FailureModel::juno_a72(),
                &VminConfig {
                    trials: 2,
                    golden_iterations: 30,
                    ..VminConfig::default()
                },
            )
            .unwrap();
        assert_eq!(report.loop_instructions, 16);
    }
}
