//! PDN fingerprinting and tamper detection (§5.3(c) / §10).
//!
//! The paper notes that quickly measuring the first-order resonance is
//! useful "for post-production purposes like PDN simulation validation,
//! tampering detection etc.": hardware implants, removed decoupling
//! capacitors or package rework all change the PDN's capacitance or
//! inductance, which moves the resonance — and the EM sweep sees that
//! from outside the case. This module captures a golden fingerprint and
//! compares later measurements against it.

use crate::fast_sweep::{fast_resonance_sweep, fast_resonance_sweep_on, FastSweepConfig};
use emvolt_backend::MeasurementBackend;
use emvolt_platform::{DomainError, EmBench, VoltageDomain};

/// A PDN fingerprint: where the first-order resonance sits and how
/// strongly it radiates under the reference sweep loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnFingerprint {
    /// First-order resonance estimate, Hz.
    pub resonance_hz: f64,
    /// EM amplitude at the resonance, dBm.
    pub peak_dbm: f64,
}

/// Verdict of a fingerprint comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TamperVerdict {
    /// The measured fingerprint matches the baseline within tolerance.
    Clean,
    /// The resonance moved: capacitance or inductance changed.
    ResonanceShift {
        /// Baseline resonance, Hz.
        baseline_hz: f64,
        /// Measured resonance, Hz.
        measured_hz: f64,
        /// Relative shift (`measured/baseline - 1`).
        shift: f64,
    },
}

impl TamperVerdict {
    /// `true` for any deviation.
    pub fn is_tampered(self) -> bool {
        self != TamperVerdict::Clean
    }
}

/// Captures a golden fingerprint of `domain` using the §5.3 fast sweep.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fingerprint(
    domain: &VoltageDomain,
    bench: &mut EmBench,
    config: &FastSweepConfig,
) -> Result<PdnFingerprint, DomainError> {
    let sweep = fast_resonance_sweep(domain, bench, config)?;
    Ok(fingerprint_of(&sweep))
}

/// [`fingerprint`] over any [`MeasurementBackend`] — a replayed trace of
/// the golden sweep fingerprints the board without re-simulation.
///
/// # Errors
///
/// As for [`fingerprint`]; backend-layer failures surface as
/// [`DomainError::Backend`].
pub fn fingerprint_on<B: MeasurementBackend + ?Sized>(
    backend: &mut B,
    domain_name: &str,
    config: &FastSweepConfig,
) -> Result<PdnFingerprint, DomainError> {
    let sweep = fast_resonance_sweep_on(backend, domain_name, config)?;
    Ok(fingerprint_of(&sweep))
}

fn fingerprint_of(sweep: &crate::fast_sweep::FastSweepResult) -> PdnFingerprint {
    let peak_dbm = sweep
        .points
        .iter()
        .map(|p| p.amplitude_dbm)
        .fold(f64::NEG_INFINITY, f64::max);
    PdnFingerprint {
        resonance_hz: sweep.resonance_hz,
        peak_dbm,
    }
}

/// Compares a fresh fingerprint against the golden baseline; resonance
/// shifts beyond `tolerance` (relative, e.g. `0.05` = 5%) are flagged.
pub fn compare(
    baseline: &PdnFingerprint,
    measured: &PdnFingerprint,
    tolerance: f64,
) -> TamperVerdict {
    let shift = measured.resonance_hz / baseline.resonance_hz - 1.0;
    if shift.abs() > tolerance {
        TamperVerdict::ResonanceShift {
            baseline_hz: baseline.resonance_hz,
            measured_hz: measured.resonance_hz,
            shift,
        }
    } else {
        TamperVerdict::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_platform::a72_pdn;

    fn sparse_config(domain: &VoltageDomain) -> FastSweepConfig {
        let mut cfg = FastSweepConfig::for_domain(domain);
        cfg.cpu_freqs_hz = cfg.cpu_freqs_hz.iter().step_by(2).copied().collect();
        cfg.samples_per_point = 3;
        cfg
    }

    #[test]
    fn untampered_board_reads_clean() {
        let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let cfg = sparse_config(&domain);
        let golden = fingerprint(&domain, &mut EmBench::new(31), &cfg).unwrap();
        let fresh = fingerprint(&domain, &mut EmBench::new(32), &cfg).unwrap();
        assert_eq!(compare(&golden, &fresh, 0.08), TamperVerdict::Clean);
    }

    #[test]
    fn removed_decap_is_detected() {
        let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let cfg = sparse_config(&domain);
        let golden = fingerprint(&domain, &mut EmBench::new(33), &cfg).unwrap();

        // Tamper: 35% of the shared die/package decap slice is removed
        // (e.g. a reworked package), raising the resonance.
        let mut params = a72_pdn();
        params.die_capacitance.cluster_farads *= 0.50;
        let tampered = VoltageDomain::new("A72*", CoreModel::cortex_a72(), params, 1.2e9);
        let cfg_t = sparse_config(&tampered);
        let fresh = fingerprint(&tampered, &mut EmBench::new(33), &cfg_t).unwrap();

        let verdict = compare(&golden, &fresh, 0.08);
        assert!(verdict.is_tampered(), "verdict {verdict:?}");
        if let TamperVerdict::ResonanceShift { shift, .. } = verdict {
            assert!(shift > 0.0, "less capacitance must raise the resonance");
        }
    }

    #[test]
    fn tolerance_is_respected() {
        let base = PdnFingerprint {
            resonance_hz: 69e6,
            peak_dbm: -60.0,
        };
        let close = PdnFingerprint {
            resonance_hz: 70e6,
            peak_dbm: -61.0,
        };
        let far = PdnFingerprint {
            resonance_hz: 80e6,
            peak_dbm: -60.0,
        };
        assert_eq!(compare(&base, &close, 0.05), TamperVerdict::Clean);
        assert!(compare(&base, &far, 0.05).is_tampered());
    }
}
