//! # emvolt-core
//!
//! The paper's primary contribution (Hadjilambrou et al., MICRO 2018):
//! non-intrusive, zero-overhead PDN characterization from CPU
//! electromagnetic emanations.
//!
//! * [`generate_em_virus`] — GA-evolved dI/dt stress tests driven purely
//!   by spectrum-analyzer amplitude (§3, §5.1), plus the voltage-feedback
//!   validation variant [`generate_voltage_virus`].
//! * [`fast_resonance_sweep`] — the §5.3 loop-frequency sweep that finds
//!   the first-order PDN resonance in minutes.
//! * [`monitor`] — simultaneous multi-domain voltage-noise monitoring
//!   through a single antenna (§6.1).
//! * [`analyze_virus`] / [`format_table2`] — the Table-2 virus metrics.
//! * [`MarginPredictor`] — §10 future work (c): voltage-margin prediction
//!   from passive EM readings of conventional workloads.
//! * [`tamper`] — §10: PDN fingerprinting and tamper detection via
//!   resonance shifts.
//! * [`Characterization`] — a façade running the complete flow.
//!
//! Every campaign entry point has an `_on` twin generic over
//! [`emvolt_backend::MeasurementBackend`] ([`generate_em_virus_on`],
//! [`fast_resonance_sweep_on`], [`monitor::capture_multi_domain_on`],
//! [`tamper::fingerprint_on`], [`MarginPredictor::calibrate_on`]): the
//! same flow runs against the live simulation chain, a recording wrapper
//! persisting a JSONL trace, or a replayed trace that never touches the
//! circuit solver.
//!
//! # Examples
//!
//! ```no_run
//! use emvolt_core::{Characterization, VirusGenConfig};
//! use emvolt_cpu::CoreModel;
//! use emvolt_platform::{a72_pdn, VoltageDomain};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let domain = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
//! let mut session = Characterization::new(domain, 42);
//! let sweep = session.find_resonance_fast()?;
//! println!("resonance ~ {:.1} MHz", sweep.resonance_hz / 1e6);
//! let virus = session.generate_virus("a72em", &VirusGenConfig::default())?;
//! println!("virus dominant frequency {:.1} MHz", virus.dominant_hz / 1e6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaigns;
mod characterization;
pub mod emergency;
mod fast_sweep;
mod ga_virus;
pub mod monitor;
mod predictor;
mod report;
pub mod tamper;

pub use campaigns::{
    fast_resonance_sweep_resumable, generate_em_virus_resumable, SweepCampaign, VirusCampaign,
};
pub use characterization::Characterization;
pub use fast_sweep::{
    fast_resonance_sweep, fast_resonance_sweep_on, FastSweepConfig, FastSweepResult, SweepPoint,
};
pub use ga_virus::{
    annotate_droop, dominant_from_run, generate_em_virus, generate_em_virus_observed,
    generate_em_virus_on, generate_voltage_virus, GenerationProgress, GenerationRecord, Virus,
    VirusGenConfig, VoltageMetric,
};
pub use predictor::MarginPredictor;
pub use report::{analyze_virus, format_table2, VirusReport};
