//! The fast EM resonance-detection methodology of §5.3.
//!
//! A hand-written loop with a high-current burst (8 ADDs) and a
//! low-current stall (1 DIV) produces one current pulse per iteration —
//! a visible EM spike at the loop frequency. Sweeping the CPU clock with
//! DVFS slides that spike across the spectrum; the clock at which its
//! amplitude peaks puts the loop frequency on the PDN's first-order
//! resonance. The whole procedure takes ~15 minutes on hardware versus
//! ~15 hours for a GA run.

use crate::campaigns::fast_resonance_sweep_resumable;
use emvolt_backend::{LiveBackend, MeasurementBackend};
use emvolt_engine::DriveOptions;
use emvolt_obs::Telemetry;
use emvolt_platform::{DomainError, EmBench, SimClock, VoltageDomain};

/// One point of a loop-frequency sweep (Figs. 11, 13, 16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// CPU clock at this point, Hz.
    pub cpu_freq_hz: f64,
    /// Resulting loop frequency, Hz.
    pub loop_freq_hz: f64,
    /// EM amplitude of the loop-frequency spike, dBm.
    pub amplitude_dbm: f64,
}

/// Result of a fast resonance sweep.
#[derive(Debug, Clone)]
pub struct FastSweepResult {
    /// All sweep points, in the order visited.
    pub points: Vec<SweepPoint>,
    /// Estimated first-order resonance: the loop frequency with maximal
    /// EM amplitude.
    pub resonance_hz: f64,
    /// Simulated wall-clock cost of the physical sweep.
    pub campaign: SimClock,
}

/// Configuration of the fast sweep.
#[derive(Debug, Clone)]
pub struct FastSweepConfig {
    /// CPU frequencies to visit (the paper steps 1.2 GHz down to 120 MHz
    /// in 20 MHz steps on the A72).
    pub cpu_freqs_hz: Vec<f64>,
    /// Cores loaded with the sweep loop (one in the paper, so EM
    /// amplitude differences come from the PDN rather than total power).
    pub loaded_cores: usize,
    /// Spectrum samples per point.
    pub samples_per_point: usize,
    /// Half-width of the band around the expected loop frequency in
    /// which the spike amplitude is read, Hz.
    pub marker_halfwidth_hz: f64,
    /// Physics fidelity per point.
    pub run: emvolt_platform::RunConfig,
    /// Telemetry handle: the sweep is serial, so one `sweep` span per
    /// DVFS point is emitted in visit order, stamped with the simulated
    /// campaign clock. Defaults to the inert handle.
    pub telemetry: Telemetry,
}

impl FastSweepConfig {
    /// The paper's A72 sweep: max clock down to 10% in 20 MHz steps.
    pub fn for_domain(domain: &VoltageDomain) -> Self {
        Self::for_max_frequency(domain.max_frequency())
    }

    /// As [`FastSweepConfig::for_domain`], from the top clock alone —
    /// useful when the domain lives behind a [`MeasurementBackend`] and
    /// only its [`DomainInfo`](emvolt_backend::DomainInfo) is at hand.
    pub fn for_max_frequency(max_hz: f64) -> Self {
        let step = 20e6 * (max_hz / 1.2e9).max(0.5); // scale step to platform
        let mut freqs = Vec::new();
        let mut f = max_hz;
        while f >= max_hz * 0.1 {
            freqs.push(f);
            f -= step;
        }
        FastSweepConfig {
            cpu_freqs_hz: freqs,
            loaded_cores: 1,
            samples_per_point: 5,
            marker_halfwidth_hz: 3e6,
            run: emvolt_platform::RunConfig::fast(),
            telemetry: Telemetry::noop(),
        }
    }
}

/// Runs the fast sweep on (a copy of) `domain`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fast_resonance_sweep(
    domain: &VoltageDomain,
    bench: &mut EmBench,
    config: &FastSweepConfig,
) -> Result<FastSweepResult, DomainError> {
    // Re-home the caller's rig behind a live backend for the duration of
    // the sweep, then hand it back with its analyzer time folded in.
    let rig = std::mem::replace(bench, EmBench::new(0));
    let mut backend = LiveBackend::single(domain.clone(), rig, config.run.clone());
    let result = fast_resonance_sweep_on(&mut backend, domain.name(), config);
    *bench = backend.into_bench();
    result
}

/// [`fast_resonance_sweep`] over any [`MeasurementBackend`]: each DVFS
/// point is one serial rig measurement (the backend keeps a single warm
/// runner — the PDN netlist, its factorizations and the transient
/// scratch are built once and reused across every point).
///
/// # Errors
///
/// As for [`fast_resonance_sweep`]; backend-layer failures surface as
/// [`DomainError::Backend`].
pub fn fast_resonance_sweep_on<B: MeasurementBackend + ?Sized>(
    backend: &mut B,
    domain_name: &str,
    config: &FastSweepConfig,
) -> Result<FastSweepResult, DomainError> {
    // No batch limit in the default options, so the drive always runs to
    // completion.
    let result =
        fast_resonance_sweep_resumable(backend, domain_name, config, &DriveOptions::default())?;
    Ok(result.expect("campaign without a batch limit always completes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_platform::{a72_pdn, EmBench};

    #[test]
    fn sweep_finds_a72_resonance() {
        let domain =
            emvolt_platform::VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let mut bench = EmBench::new(4);
        let cfg = FastSweepConfig::for_domain(&domain);
        let result = fast_resonance_sweep(&domain, &mut bench, &cfg).unwrap();
        let expected = domain.expected_resonance_hz();
        assert!(
            (result.resonance_hz - expected).abs() / expected < 0.20,
            "sweep says {:.2e}, analytic {:.2e}",
            result.resonance_hz,
            expected
        );
        assert_eq!(result.points.len(), cfg.cpu_freqs_hz.len());
        // Physical campaign takes minutes, not hours.
        assert!(result.campaign.seconds() < 3600.0);
    }

    #[test]
    fn loop_frequency_tracks_clock() {
        let domain =
            emvolt_platform::VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let mut bench = EmBench::new(5);
        let cfg = FastSweepConfig {
            cpu_freqs_hz: vec![1.2e9, 600e6],
            ..FastSweepConfig::for_domain(&domain)
        };
        let result = fast_resonance_sweep(&domain, &mut bench, &cfg).unwrap();
        let ratio = result.points[0].loop_freq_hz / result.points[1].loop_freq_hz;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }
}
