//! Virus analysis: the metrics of Table 2.

use crate::ga_virus::dominant_from_run;
use emvolt_isa::{Kernel, MixCategory};
use emvolt_platform::{DomainError, RunConfig, VoltageDomain};
use emvolt_vmin::{vmin_test, FailureModel, VminConfig};
use std::collections::BTreeMap;

/// One row of Table 2: the characteristics of a dI/dt virus on its
/// platform.
#[derive(Debug, Clone)]
pub struct VirusReport {
    /// Virus tag (e.g. `"a72em"`).
    pub name: String,
    /// Loop-body length in instructions.
    pub loop_instructions: usize,
    /// Average IPC while looping.
    pub ipc: f64,
    /// Loop period in seconds.
    pub loop_period_s: f64,
    /// Loop frequency in Hz (`1/loop_period`).
    pub loop_freq_hz: f64,
    /// Dominant (highest-EM-amplitude) frequency in Hz.
    pub dominant_freq_hz: f64,
    /// Voltage margin: nominal voltage minus virus V_MIN, volts.
    pub voltage_margin_v: f64,
    /// Instruction-mix fractions per Table-2 category.
    pub mix: BTreeMap<MixCategory, f64>,
}

impl VirusReport {
    /// Ratio of dominant to loop frequency — §8.2's key insight: ARM
    /// viruses have dominant frequencies at small-integer multiples of
    /// the loop frequency, while the faster AMD CPU's viruses match them.
    pub fn dominant_to_loop_ratio(&self) -> f64 {
        self.dominant_freq_hz / self.loop_freq_hz
    }

    /// The minimum IPC needed for the dominant frequency to equal the
    /// resonant frequency at this loop length and clock (§8.2):
    /// `minIPC = resonance * loop_instructions / clock`.
    pub fn min_ipc_for_match(&self, resonance_hz: f64, clock_hz: f64) -> f64 {
        resonance_hz * self.loop_instructions as f64 / clock_hz
    }
}

/// Builds the Table-2 row for a virus kernel on a domain.
///
/// # Errors
///
/// Propagates simulation failures from the run and the V_MIN campaign.
pub fn analyze_virus(
    name: &str,
    domain: &VoltageDomain,
    kernel: &Kernel,
    failure: &FailureModel,
    vmin_cfg: &VminConfig,
    run_cfg: &RunConfig,
) -> Result<VirusReport, DomainError> {
    let run = domain.run(kernel, vmin_cfg.loaded_cores, run_cfg)?;
    let vmin = vmin_test(domain, kernel, failure, vmin_cfg)?;
    let margin = if vmin.first_failure_v.is_nan() {
        domain.voltage() - vmin_cfg.floor_v
    } else {
        domain.voltage() - vmin.vmin_v
    };
    Ok(VirusReport {
        name: name.to_owned(),
        loop_instructions: kernel.len(),
        ipc: run.ipc,
        loop_period_s: 1.0 / run.loop_frequency,
        loop_freq_hz: run.loop_frequency,
        dominant_freq_hz: dominant_from_run(&run),
        voltage_margin_v: margin,
        mix: kernel.mix_breakdown(),
    })
}

/// Formats a collection of reports as the paper's Table 2 (text).
pub fn format_table2(reports: &[VirusReport]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>6} {:>10} {:>10} {:>10} {:>8}  Mix (category: %)",
        "Virus", "Instr", "IPC", "Period(ns)", "LoopF(MHz)", "DomF(MHz)", "Margin"
    );
    for r in reports {
        let mix: Vec<String> = MixCategory::ALL
            .iter()
            .filter_map(|c| {
                let f = r.mix.get(c).copied().unwrap_or(0.0);
                (f > 0.0).then(|| format!("{}:{:.0}%", c.label(), f * 100.0))
            })
            .collect();
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>6.2} {:>10.2} {:>10.2} {:>10.2} {:>6.0}mV  {}",
            r.name,
            r.loop_instructions,
            r.ipc,
            r.loop_period_s * 1e9,
            r.loop_freq_hz / 1e6,
            r.dominant_freq_hz / 1e6,
            r.voltage_margin_v * 1e3,
            mix.join(" ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::{kernels::padded_sweep_kernel, kernels::sweep_kernel, Isa};
    use emvolt_platform::a72_pdn;

    #[test]
    fn report_has_consistent_metrics() {
        let domain =
            emvolt_platform::VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let cfg = VminConfig {
            trials: 2,
            golden_iterations: 30,
            ..VminConfig::default()
        };
        let report = analyze_virus(
            "a72-sweep",
            &domain,
            &padded_sweep_kernel(Isa::ArmV8, 17),
            &FailureModel::juno_a72(),
            &cfg,
            &RunConfig::fast(),
        )
        .unwrap();
        assert_eq!(report.loop_instructions, 26);
        assert!((report.loop_freq_hz * report.loop_period_s - 1.0).abs() < 1e-9);
        assert!(report.voltage_margin_v > 0.0 && report.voltage_margin_v < 0.5);
        let mix_total: f64 = report.mix.values().sum();
        assert!((mix_total - 1.0).abs() < 1e-9);
        assert!(report.dominant_to_loop_ratio() > 0.9);
    }

    #[test]
    fn table_formatting_contains_rows() {
        let domain =
            emvolt_platform::VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let cfg = VminConfig {
            trials: 2,
            golden_iterations: 30,
            ..VminConfig::default()
        };
        let report = analyze_virus(
            "a72em",
            &domain,
            &sweep_kernel(Isa::ArmV8),
            &FailureModel::juno_a72(),
            &cfg,
            &RunConfig::fast(),
        )
        .unwrap();
        let table = format_table2(&[report]);
        assert!(table.contains("a72em"));
        assert!(table.contains("Margin"));
    }

    #[test]
    fn min_ipc_formula() {
        let r = VirusReport {
            name: "x".into(),
            loop_instructions: 50,
            ipc: 1.0,
            loop_period_s: 1e-8,
            loop_freq_hz: 1e8,
            dominant_freq_hz: 1e8,
            voltage_margin_v: 0.1,
            mix: BTreeMap::new(),
        };
        // The paper's example: ~3 for the A72 (69 MHz, 50 instr, 1.2 GHz).
        let min_ipc = r.min_ipc_for_match(69e6, 1.2e9);
        assert!((min_ipc - 2.875).abs() < 1e-9);
    }
}
