//! Simultaneous multi-domain voltage-noise monitoring (§6.1, Fig. 15).
//!
//! A single antenna picks up the emanations of every voltage domain in
//! range at once — something no physically attached probe can do. Running
//! the A72 and A53 viruses together produces a spectrum with both
//! frequency signatures visible.

use emvolt_inst::SweepReading;
use emvolt_platform::{DomainRun, EmBench};

/// A detected voltage-noise signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature {
    /// Frequency of the spike, Hz.
    pub freq_hz: f64,
    /// Level in dBm.
    pub level_dbm: f64,
}

/// Captures one analyzer sweep with every run in `runs` radiating
/// simultaneously.
pub fn capture_multi_domain(bench: &mut EmBench, runs: &[&DomainRun]) -> SweepReading {
    let rx = bench.received_spectrum_multi(runs);
    // One sweep of the combined field.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x515);
    bench.analyzer.sweep(&rx, &mut rng)
}

use rand::SeedableRng;

/// Extracts up to `count` signatures at least `min_separation_hz` apart
/// and at least `min_above_floor_db` above the analyzer noise floor.
pub fn detect_signatures(
    reading: &SweepReading,
    noise_floor_dbm: f64,
    count: usize,
    min_separation_hz: f64,
    min_above_floor_db: f64,
) -> Vec<Signature> {
    let mut candidates: Vec<(f64, f64)> = reading
        .points
        .iter()
        .copied()
        .filter(|(_, dbm)| *dbm > noise_floor_dbm + min_above_floor_db)
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut picked: Vec<Signature> = Vec::new();
    for (f, dbm) in candidates {
        if picked.len() >= count {
            break;
        }
        if picked
            .iter()
            .all(|s| (s.freq_hz - f).abs() >= min_separation_hz)
        {
            picked.push(Signature {
                freq_hz: f,
                level_dbm: dbm,
            });
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::{kernels::padded_sweep_kernel, Isa};
    use emvolt_platform::{a53_pdn, a72_pdn, RunConfig, VoltageDomain};

    #[test]
    fn both_domain_signatures_are_visible() {
        let a72 = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let a53 = VoltageDomain::new("A53", CoreModel::cortex_a53(), a53_pdn(), 950e6);
        let cfg = RunConfig::fast();
        // Kernels whose loop frequencies sit near each cluster's
        // first-order resonance, so both radiate strongly and at
        // distinct frequencies (69 vs 76.5 MHz).
        let run72 = a72
            .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)
            .unwrap();
        let run53 = a53
            .run(&padded_sweep_kernel(Isa::ArmV8, 8), 4, &cfg)
            .unwrap();
        let mut bench = emvolt_platform::EmBench::new(6);
        let reading = capture_multi_domain(&mut bench, &[&run72, &run53]);
        let sigs = detect_signatures(&reading, -95.0, 4, 4e6, 10.0);
        assert!(
            sigs.len() >= 2,
            "expected at least two signatures, got {sigs:?}"
        );
    }

    #[test]
    fn no_signatures_in_silence() {
        let a72 = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let idle = a72.run_idle(&RunConfig::fast()).unwrap();
        let mut bench = emvolt_platform::EmBench::new(7);
        let reading = capture_multi_domain(&mut bench, &[&idle]);
        let sigs = detect_signatures(&reading, -95.0, 4, 10e6, 15.0);
        assert!(sigs.is_empty(), "unexpected signatures {sigs:?}");
    }
}
