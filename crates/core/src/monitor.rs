//! Simultaneous multi-domain voltage-noise monitoring (§6.1, Fig. 15).
//!
//! A single antenna picks up the emanations of every voltage domain in
//! range at once — something no physically attached probe can do. Running
//! the A72 and A53 viruses together produces a spectrum with both
//! frequency signatures visible.

use emvolt_backend::{BackendError, CombinedSource, MeasurementBackend};
use emvolt_inst::SweepReading;
use emvolt_obs::Telemetry;
use emvolt_platform::{DomainError, DomainRun, EmBench};

/// A detected voltage-noise signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signature {
    /// Frequency of the spike, Hz.
    pub freq_hz: f64,
    /// Level in dBm.
    pub level_dbm: f64,
}

/// Captures one analyzer sweep with every run in `runs` radiating
/// simultaneously.
pub fn capture_multi_domain(bench: &mut EmBench, runs: &[&DomainRun]) -> SweepReading {
    let rx = bench.received_spectrum_multi(runs);
    // One sweep of the combined field.
    let mut rng = rand::rngs::StdRng::seed_from_u64(CAPTURE_SEED);
    bench.analyzer.sweep(&rx, &mut rng)
}

use rand::SeedableRng;

/// Analyzer-noise seed of [`capture_multi_domain`], reused by the
/// backend-routed capture so both spell the same sweep.
pub const CAPTURE_SEED: u64 = 0x515;

/// [`capture_multi_domain`] over any [`MeasurementBackend`]: the backend
/// executes (or replays) each source's run and sweeps the combined field
/// once, with analyzer noise drawn from [`CAPTURE_SEED`].
///
/// # Errors
///
/// Propagates simulation failures; backend-layer failures surface as
/// [`DomainError::Backend`].
pub fn capture_multi_domain_on<B: MeasurementBackend + ?Sized>(
    backend: &mut B,
    sources: &[CombinedSource<'_>],
    telemetry: &Telemetry,
) -> Result<SweepReading, DomainError> {
    backend
        .capture_combined(sources, CAPTURE_SEED, telemetry)
        .map_err(BackendError::into_domain_error)
}

/// Extracts up to `count` signatures at least `min_separation_hz` apart
/// and at least `min_above_floor_db` above the analyzer noise floor.
///
/// Candidates are considered strongest-first; two spikes at exactly the
/// same level are tie-broken by ascending frequency, so the selection is
/// a pure function of the reading rather than of the analyzer's point
/// order. The returned signatures are sorted by ascending frequency.
pub fn detect_signatures(
    reading: &SweepReading,
    noise_floor_dbm: f64,
    count: usize,
    min_separation_hz: f64,
    min_above_floor_db: f64,
) -> Vec<Signature> {
    let mut candidates: Vec<(f64, f64)> = reading
        .points
        .iter()
        .copied()
        .filter(|(_, dbm)| *dbm > noise_floor_dbm + min_above_floor_db)
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.total_cmp(&b.0)));
    let mut picked: Vec<Signature> = Vec::new();
    for (f, dbm) in candidates {
        if picked.len() >= count {
            break;
        }
        if picked
            .iter()
            .all(|s| (s.freq_hz - f).abs() >= min_separation_hz)
        {
            picked.push(Signature {
                freq_hz: f,
                level_dbm: dbm,
            });
        }
    }
    picked.sort_by(|a, b| a.freq_hz.total_cmp(&b.freq_hz));
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::{kernels::padded_sweep_kernel, Isa};
    use emvolt_platform::{a53_pdn, a72_pdn, RunConfig, VoltageDomain};

    #[test]
    fn both_domain_signatures_are_visible() {
        let a72 = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let a53 = VoltageDomain::new("A53", CoreModel::cortex_a53(), a53_pdn(), 950e6);
        let cfg = RunConfig::fast();
        // Kernels whose loop frequencies sit near each cluster's
        // first-order resonance, so both radiate strongly and at
        // distinct frequencies (69 vs 76.5 MHz).
        let run72 = a72
            .run(&padded_sweep_kernel(Isa::ArmV8, 17), 2, &cfg)
            .unwrap();
        let run53 = a53
            .run(&padded_sweep_kernel(Isa::ArmV8, 8), 4, &cfg)
            .unwrap();
        let mut bench = emvolt_platform::EmBench::new(6);
        let reading = capture_multi_domain(&mut bench, &[&run72, &run53]);
        let sigs = detect_signatures(&reading, -95.0, 4, 4e6, 10.0);
        assert!(
            sigs.len() >= 2,
            "expected at least two signatures, got {sigs:?}"
        );
        assert!(
            sigs.windows(2).all(|w| w[0].freq_hz < w[1].freq_hz),
            "signatures must come back frequency-sorted: {sigs:?}"
        );
    }

    fn reading_of(points: Vec<(f64, f64)>) -> SweepReading {
        SweepReading { points }
    }

    #[test]
    fn equal_levels_tie_break_toward_lower_frequency() {
        // Three equal-level spikes: with room for two picks separated by
        // 10 MHz, the selection must prefer the lower frequencies rather
        // than depend on input order.
        let reading = reading_of(vec![(90e6, -50.0), (70e6, -50.0), (110e6, -50.0)]);
        let sigs = detect_signatures(&reading, -95.0, 2, 10e6, 10.0);
        assert_eq!(sigs.len(), 2);
        assert_eq!(sigs[0].freq_hz, 70e6);
        assert_eq!(sigs[1].freq_hz, 90e6);

        // Input order must not matter.
        let shuffled = reading_of(vec![(110e6, -50.0), (90e6, -50.0), (70e6, -50.0)]);
        assert_eq!(detect_signatures(&shuffled, -95.0, 2, 10e6, 10.0), sigs);
    }

    #[test]
    fn signatures_return_sorted_by_frequency() {
        // Strongest spike sits at the highest frequency; output must
        // still be frequency-ascending.
        let reading = reading_of(vec![(150e6, -40.0), (60e6, -55.0), (100e6, -45.0)]);
        let sigs = detect_signatures(&reading, -95.0, 3, 5e6, 10.0);
        assert_eq!(sigs.len(), 3);
        let freqs: Vec<f64> = sigs.iter().map(|s| s.freq_hz).collect();
        assert_eq!(freqs, vec![60e6, 100e6, 150e6]);
        // The strongest level survives selection untouched.
        assert_eq!(sigs[2].level_dbm, -40.0);
    }

    #[test]
    fn no_signatures_in_silence() {
        let a72 = VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9);
        let idle = a72.run_idle(&RunConfig::fast()).unwrap();
        let mut bench = emvolt_platform::EmBench::new(7);
        let reading = capture_multi_domain(&mut bench, &[&idle]);
        let sigs = detect_signatures(&reading, -95.0, 4, 10e6, 15.0);
        assert!(sigs.is_empty(), "unexpected signatures {sigs:?}");
    }
}
