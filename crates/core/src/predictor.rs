//! Voltage-margin prediction from EM emanations (§10, future work (c)).
//!
//! The paper proposes predicting voltage margins from EM readings taken
//! during *conventional* workload execution — no undervolting campaign at
//! all. The physics supports a simple model: maximum droop is dominated
//! by the resonant current amplitude, and the received EM amplitude at
//! the band peak is proportional to that same amplitude (§2.2). A linear
//! fit of droop against received amplitude, calibrated once per platform
//! with a handful of direct measurements, then predicts the droop (and
//! hence the V_MIN margin) of any workload from a purely passive EM
//! reading.

use emvolt_backend::{BackendError, BandSpec, Load, MeasureRequest, MeasurementBackend};
use emvolt_dsp::dbm_to_watts;
use emvolt_isa::Kernel;
use emvolt_obs::Telemetry;
use emvolt_platform::{DomainError, EmBench, EmReading, RunConfig, VoltageDomain, RESONANCE_BAND};
use emvolt_vmin::FailureModel;

/// A calibrated EM → droop predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginPredictor {
    /// Slope of droop (V) per unit received amplitude (sqrt-watt).
    slope: f64,
    /// Intercept (V): broadband/IR droop floor.
    intercept: f64,
    /// Calibration points as `(amplitude, droop_v)`.
    points: Vec<(f64, f64)>,
}

/// Converts a dBm band-peak reading into the amplitude-like regressor
/// (square root of linear power).
fn amplitude_of(reading: &EmReading) -> f64 {
    dbm_to_watts(reading.metric_dbm).sqrt()
}

impl MarginPredictor {
    /// Calibrates the predictor on `workloads`: each is run, its droop
    /// measured directly (the one-off step that does need a probe or a
    /// V_MIN ladder) and its EM reading taken, then a least-squares line
    /// is fitted.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; fails with
    /// [`DomainError::TooManyLoadedCores`] style errors from the runs.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two workloads are supplied.
    pub fn calibrate(
        domain: &VoltageDomain,
        bench: &mut EmBench,
        workloads: &[(&str, &Kernel)],
        loaded_cores: usize,
        samples: usize,
        config: &RunConfig,
    ) -> Result<Self, DomainError> {
        assert!(
            workloads.len() >= 2,
            "need at least two calibration workloads"
        );
        let mut points = Vec::with_capacity(workloads.len());
        for (_, kernel) in workloads {
            let run = domain.run(kernel, loaded_cores, config)?;
            let reading = bench.measure(&run, samples);
            points.push((amplitude_of(&reading), run.max_droop()));
        }
        Ok(Self::fit(points))
    }

    /// [`MarginPredictor::calibrate`] over any
    /// [`MeasurementBackend`]: each workload is one serial rig
    /// measurement over the full resonance band, and the droop regressand
    /// comes from the observation itself — so a recorded calibration
    /// replays without re-simulation.
    ///
    /// # Errors
    ///
    /// As for [`MarginPredictor::calibrate`]; backend-layer failures
    /// surface as [`DomainError::Backend`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than two workloads are supplied.
    pub fn calibrate_on<B: MeasurementBackend + ?Sized>(
        backend: &mut B,
        domain_name: &str,
        workloads: &[(&str, &Kernel)],
        loaded_cores: usize,
        samples: usize,
        config: &RunConfig,
        telemetry: &Telemetry,
    ) -> Result<Self, DomainError> {
        assert!(
            workloads.len() >= 2,
            "need at least two calibration workloads"
        );
        backend
            .configure_run(config)
            .map_err(BackendError::into_domain_error)?;
        let mut points = Vec::with_capacity(workloads.len());
        for (_, kernel) in workloads {
            let req = MeasureRequest {
                domain: domain_name,
                load: Load::Kernel {
                    kernel,
                    loaded_cores,
                },
                freq_hz: None,
                band: BandSpec::Explicit {
                    lo_hz: RESONANCE_BAND.0,
                    hi_hz: RESONANCE_BAND.1,
                },
                samples,
                seed: None,
            };
            let obs = backend
                .measure_serial(&req, telemetry)
                .map_err(BackendError::into_domain_error)?;
            points.push((amplitude_of(&obs.reading), obs.max_droop_v));
        }
        backend.finish().map_err(BackendError::into_domain_error)?;
        Ok(Self::fit(points))
    }

    /// Ordinary least squares over `(amplitude, droop)` points.
    fn fit(points: Vec<(f64, f64)>) -> Self {
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        let slope = if denom.abs() < 1e-30 {
            0.0
        } else {
            (n * sxy - sx * sy) / denom
        };
        let intercept = (sy - slope * sx) / n;
        MarginPredictor {
            slope,
            intercept,
            points,
        }
    }

    /// Predicts the maximum droop (volts) from a passive EM reading.
    pub fn predict_droop(&self, reading: &EmReading) -> f64 {
        (self.slope * amplitude_of(reading) + self.intercept).max(0.0)
    }

    /// Predicts a workload's V_MIN: critical voltage plus predicted
    /// droop.
    pub fn predict_vmin(&self, reading: &EmReading, model: &FailureModel, clock_hz: f64) -> f64 {
        model.v_crit_at(clock_hz) + self.predict_droop(reading)
    }

    /// Coefficient of determination of the calibration fit.
    pub fn r_squared(&self) -> f64 {
        let n = self.points.len() as f64;
        let mean = self.points.iter().map(|p| p.1).sum::<f64>() / n;
        let ss_tot: f64 = self.points.iter().map(|p| (p.1 - mean).powi(2)).sum();
        let ss_res: f64 = self
            .points
            .iter()
            .map(|p| {
                let pred = self.slope * p.0 + self.intercept;
                (p.1 - pred).powi(2)
            })
            .sum();
        if ss_tot < 1e-30 {
            return 1.0;
        }
        1.0 - ss_res / ss_tot
    }

    /// Fitted slope (V per sqrt-watt).
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept (V).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::kernels::{padded_sweep_kernel, resonant_stress_kernel};
    use emvolt_isa::Isa;
    use emvolt_platform::{a72_pdn, spec2006_suite};

    fn domain() -> VoltageDomain {
        VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
    }

    #[test]
    fn calibration_fits_the_em_droop_relation() {
        let d = domain();
        let mut bench = EmBench::new(21);
        let suite = spec2006_suite(Isa::ArmV8);
        let stress = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        let probe = padded_sweep_kernel(Isa::ArmV8, 17);
        let mut cal: Vec<(&str, &Kernel)> = suite
            .iter()
            .take(6)
            .map(|w| (w.name.as_str(), &w.kernel))
            .collect();
        cal.push(("stress", &stress));
        cal.push(("probe", &probe));
        let predictor =
            MarginPredictor::calibrate(&d, &mut bench, &cal, 2, 5, &RunConfig::fast()).unwrap();
        assert!(
            predictor.r_squared() > 0.6,
            "weak EM/droop fit: R^2 = {}",
            predictor.r_squared()
        );
        assert!(predictor.slope() > 0.0, "droop must grow with EM amplitude");
    }

    #[test]
    fn prediction_ranks_unseen_workloads() {
        let d = domain();
        let mut bench = EmBench::new(22);
        let suite = spec2006_suite(Isa::ArmV8);
        // Calibration spans the dynamic range, benchmark-class to
        // virus-class — as a vendor would calibrate with both regular
        // code and a known stress test.
        let stress = resonant_stress_kernel(Isa::ArmV8, 12, 17);
        let mut cal: Vec<(&str, &Kernel)> = suite
            .iter()
            .take(5)
            .map(|w| (w.name.as_str(), &w.kernel))
            .collect();
        cal.push(("stress", &stress));
        let predictor =
            MarginPredictor::calibrate(&d, &mut bench, &cal, 2, 5, &RunConfig::fast()).unwrap();

        // Unseen: lbm (noisiest benchmark) and a resonant probe loop.
        let cfg = RunConfig::fast();
        let lbm = suite.iter().find(|w| w.name == "lbm").expect("lbm exists");
        let probe = padded_sweep_kernel(Isa::ArmV8, 17);
        let run_lbm = d.run(&lbm.kernel, 2, &cfg).unwrap();
        let run_probe = d.run(&probe, 2, &cfg).unwrap();
        let r_lbm = bench.measure(&run_lbm, 5);
        let r_probe = bench.measure(&run_probe, 5);
        let p_lbm = predictor.predict_droop(&r_lbm);
        let p_probe = predictor.predict_droop(&r_probe);
        // Predictions track the true droops within the model's scatter.
        assert!(
            (p_lbm - run_lbm.max_droop()).abs() < 0.030,
            "lbm predicted {p_lbm} vs actual {}",
            run_lbm.max_droop()
        );
        assert!(
            (p_probe - run_probe.max_droop()).abs() < 0.030,
            "probe predicted {p_probe} vs actual {}",
            run_probe.max_droop()
        );
    }

    #[test]
    fn vmin_prediction_combines_model_and_reading() {
        let d = domain();
        let mut bench = EmBench::new(23);
        let suite = spec2006_suite(Isa::ArmV8);
        let cal: Vec<(&str, &Kernel)> = suite
            .iter()
            .take(4)
            .map(|w| (w.name.as_str(), &w.kernel))
            .collect();
        let predictor =
            MarginPredictor::calibrate(&d, &mut bench, &cal, 2, 3, &RunConfig::fast()).unwrap();
        let model = FailureModel::juno_a72();
        let run = d.run(&cal[0].1.clone(), 2, &RunConfig::fast()).unwrap();
        let reading = bench.measure(&run, 3);
        let vmin = predictor.predict_vmin(&reading, &model, d.frequency());
        assert!(
            vmin > model.v_crit && vmin < d.voltage(),
            "predicted vmin {vmin} out of range"
        );
    }
}
