//! EM-amplitude-driven dI/dt virus generation (§3, §5.1).
//!
//! A GA evolves 50-instruction loop bodies; each individual is executed
//! on the target domain and its fitness is the spectrum-analyzer metric —
//! the mean root square of 30 max-amplitude samples in the 50–200 MHz
//! band. No voltage probe is involved: this is the paper's central
//! zero-overhead characterization flow. A voltage-feedback variant
//! (OC-DSO / Kelvin-pad driven, used by the paper for validation) is also
//! provided.

use crate::campaigns::generate_em_virus_resumable;
use emvolt_backend::{LiveBackend, MeasurementBackend};
use emvolt_engine::DriveOptions;
use emvolt_ga::{derive_eval_seed, EvalContext, GaConfig, GaEngine, KernelRepresentation};
use emvolt_inst::Oscilloscope;
use emvolt_isa::{InstructionPool, Kernel};
use emvolt_obs::{CounterId, Telemetry};
use emvolt_platform::{
    DomainError, DomainRun, DomainRunner, EmBench, RunConfig, SimClock, VoltageDomain,
    INDIVIDUAL_OVERHEAD_SECONDS, RESONANCE_BAND,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which scope statistic drives the voltage-feedback GA (§3.1(b): "the
/// target metric is either maximum voltage droop or peak to peak").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VoltageMetric {
    /// Maximise the worst excursion below nominal.
    #[default]
    MaxDroop,
    /// Maximise the peak-to-peak voltage amplitude.
    PeakToPeak,
}

/// Configuration for a virus-generation campaign.
#[derive(Debug, Clone)]
pub struct VirusGenConfig {
    /// GA engine parameters (population 50, 60 generations by default).
    pub ga: GaConfig,
    /// Instructions per individual (50 in the paper, Table 2).
    pub kernel_len: usize,
    /// Cores loaded with each individual during measurement.
    pub loaded_cores: usize,
    /// Spectrum samples per individual (30 in the paper).
    pub samples_per_individual: usize,
    /// Search band in Hz; defaults to the paper's 50–200 MHz.
    pub band: (f64, f64),
    /// Scope statistic used by the voltage-feedback variant.
    pub voltage_metric: VoltageMetric,
    /// Physics fidelity per run.
    pub run: RunConfig,
    /// Worker threads for fitness evaluation: `0` picks the machine's
    /// available parallelism, `1` evaluates serially. Any value yields
    /// bit-identical campaigns — per-individual measurement seeds are
    /// derived from `(ga.seed, generation, index)`, never from a shared
    /// RNG.
    pub threads: usize,
    /// Evaluation lane width: each generation's population is split into
    /// contiguous groups of up to `lanes` individuals, and every group is
    /// measured through one batched backend call (lock-step transient,
    /// multi-lane Goertzel, shared EM transfer). `0` picks the default
    /// width. Any value yields bit-identical campaigns — batched readings
    /// are bit-identical to serial ones and the per-individual seeds are
    /// unchanged — so `lanes` (like `threads`) is purely a performance
    /// knob.
    pub lanes: usize,
    /// Opt-in genome-keyed fitness cache (off by default). When enabled,
    /// a kernel already measured in this campaign is not re-simulated or
    /// re-measured: its recorded reading is reused, and the campaign
    /// clock only advances for actual measurements. Measurement seeds
    /// then derive from the genome itself so duplicated individuals read
    /// identically. This trades the paper's "re-measure everything"
    /// realism for speed.
    pub cache_fitness: bool,
    /// Telemetry handle charged across the whole campaign: counters and
    /// histogram values accumulate from worker threads (order-independent
    /// atomics), while span events are emitted only from the
    /// single-threaded generation barrier and the post-campaign
    /// re-measurement — traces are byte-identical for every `threads`
    /// value. Defaults to the inert [`Telemetry::noop`] handle.
    pub telemetry: Telemetry,
}

impl Default for VirusGenConfig {
    fn default() -> Self {
        VirusGenConfig {
            ga: GaConfig::default(),
            kernel_len: 50,
            loaded_cores: 1,
            samples_per_individual: 30,
            band: RESONANCE_BAND,
            voltage_metric: VoltageMetric::default(),
            run: RunConfig::fast(),
            threads: 0,
            lanes: 0,
            cache_fitness: false,
            telemetry: Telemetry::noop(),
        }
    }
}

/// A stable identity hash for a kernel: ISA plus every instruction's
/// operation and operand bindings. Two kernels with equal bodies on the
/// same architecture collapse to the same key regardless of how they were
/// produced, which is exactly the equivalence the fitness cache and the
/// dominant-frequency memoization need.
pub(crate) fn kernel_identity(kernel: &Kernel) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    kernel.arch().isa().hash(&mut h);
    for i in kernel.body() {
        i.op.hash(&mut h);
        i.dst.hash(&mut h);
        i.srcs.hash(&mut h);
        i.mem_slot.hash(&mut h);
    }
    h.finish()
}

/// Resolves the `threads` knob: `0` means one worker per available core.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Resolves the `lanes` knob: `0` picks the detected SIMD level's
/// preferred width ([`emvolt_simd::preferred_lanes`] — eight on AVX2
/// hosts, four on narrower vectors), so the SoA fold fills the widest
/// FMA block the dispatched kernels will actually run. Any explicit
/// width is honored as-is; results are bit-identical at every width.
pub(crate) fn resolve_lanes(lanes: usize) -> usize {
    if lanes == 0 {
        emvolt_simd::preferred_lanes()
    } else {
        lanes
    }
}

/// One worker's reusable evaluation state for the voltage-feedback GA: a
/// warm [`DomainRunner`] (netlist + LU factorizations already built) and
/// a recycled [`DomainRun`]. The EM-driven flow pools its slots inside
/// the measurement backend instead ([`emvolt_backend::EvalSlot`]).
struct EvalSlot {
    runner: DomainRunner,
    run: DomainRun,
}

impl EvalSlot {
    fn new(
        domain: &VoltageDomain,
        run_config: &RunConfig,
        telemetry: &Telemetry,
    ) -> Result<Self, DomainError> {
        let runner = DomainRunner::new_with(domain, run_config.clone(), telemetry.clone())?;
        Ok(EvalSlot {
            runner,
            run: DomainRun::empty(),
        })
    }
}

/// A checkout pool of [`EvalSlot`]s: each worker thread pops a warm slot
/// or builds one on first use, and returns it after the evaluation. At
/// steady state the pool holds one slot per worker, so per-individual
/// setup cost is paid `threads` times per campaign instead of
/// `population x generations` times.
struct RunnerPool<'a> {
    domain: &'a VoltageDomain,
    run_config: &'a RunConfig,
    /// Quiet handle shared with every slot: worker-side emissions are
    /// counter/histogram updates only, never events.
    telemetry: Telemetry,
    idle: Mutex<Vec<EvalSlot>>,
}

impl<'a> RunnerPool<'a> {
    fn new(domain: &'a VoltageDomain, run_config: &'a RunConfig, telemetry: Telemetry) -> Self {
        RunnerPool {
            domain,
            run_config,
            telemetry,
            idle: Mutex::new(Vec::new()),
        }
    }

    /// Runs `f` with a pooled slot checked out. The slot goes back to the
    /// pool whatever `f` returns — a failed run leaves the runner's plan
    /// and netlist untouched, and the scratch buffers carry no state
    /// between evaluations. Each checkout charges the scratch-pool
    /// counters: a miss means a cold slot (netlist + LU factorization)
    /// had to be built.
    fn with<T>(
        &self,
        f: impl FnOnce(&mut EvalSlot) -> Result<T, DomainError>,
    ) -> Result<T, DomainError> {
        self.telemetry.count(CounterId::ScratchCheckouts, 1);
        let mut slot = match self.idle.lock().pop() {
            Some(s) => s,
            None => {
                self.telemetry.count(CounterId::ScratchMisses, 1);
                EvalSlot::new(self.domain, self.run_config, &self.telemetry)?
            }
        };
        let result = f(&mut slot);
        self.idle.lock().push(slot);
        result
    }
}

/// Per-generation record of the fittest individual (the series plotted in
/// Figs. 7, 12 and 17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationRecord {
    /// Generation index.
    pub index: usize,
    /// Best fitness: EM metric in dBm (or droop in volts for the
    /// voltage-driven variant).
    pub best_fitness: f64,
    /// Mean fitness of the generation.
    pub mean_fitness: f64,
    /// Dominant frequency of the strongest individual, Hz.
    pub dominant_hz: f64,
    /// Maximum droop of the strongest individual in volts, when measured
    /// (the paper re-runs each generation's best against the OC-DSO).
    pub droop_v: Option<f64>,
}

/// Per-generation progress snapshot handed to the observer callback of
/// [`generate_em_virus_observed`] (and printed by `emvolt virus
/// --progress`). All figures describe the generation that just finished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationProgress {
    /// Generation index, starting at 0.
    pub index: usize,
    /// Best EM metric of the generation, dBm.
    pub best_dbm: f64,
    /// Mean EM metric of the generation, dBm.
    pub mean_dbm: f64,
    /// Worst EM metric of the generation, dBm.
    pub worst_dbm: f64,
    /// Individuals evaluated this generation (measured + cache hits).
    pub evaluated: usize,
    /// Evaluations served from the fitness cache.
    pub cache_hits: usize,
    /// Simulated campaign seconds elapsed so far.
    pub sim_seconds: f64,
}

impl GenerationProgress {
    /// Fitness-cache hit rate for this generation, percent.
    pub fn cache_hit_pct(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            100.0 * self.cache_hits as f64 / self.evaluated as f64
        }
    }
}

/// The product of a virus-generation campaign.
#[derive(Debug, Clone)]
pub struct Virus {
    /// Name tag, e.g. `"a72em"`.
    pub name: String,
    /// The winning kernel.
    pub kernel: Kernel,
    /// Its final fitness (dBm for EM-driven, volts for voltage-driven).
    pub fitness: f64,
    /// Dominant frequency of the winner, Hz.
    pub dominant_hz: f64,
    /// Per-generation progression.
    pub history: Vec<GenerationRecord>,
    /// The fittest kernel of each generation (re-run by the paper against
    /// the OC-DSO to produce the droop series of Fig. 7).
    pub generation_best: Vec<Kernel>,
    /// Simulated wall-clock the physical campaign would have taken.
    pub campaign: SimClock,
}

/// Runs the EM-driven GA (the paper's §5.1 flow) on `domain`.
///
/// Fitness evaluation fans out over [`VirusGenConfig::threads`] workers,
/// each drawing a warm [`DomainRunner`] from a pool and measuring through
/// a [`SharedEmBench`](emvolt_platform::SharedEmBench) with a seed
/// derived from `(ga.seed, generation, index)` — campaigns are
/// bit-identical for every thread count. Analyzer sweep time accumulated
/// by the workers is folded back into `bench`, and the campaign clock
/// advances exactly as the serial flow did (~18 s + 2 s per individual).
///
/// # Errors
///
/// Returns the first simulation error encountered; individuals that fail
/// to simulate (e.g. exotic kernels hitting the cycle cap) are scored at
/// the noise floor instead of aborting the campaign, so errors surface
/// only from the final re-measurement.
pub fn generate_em_virus(
    name: &str,
    domain: &VoltageDomain,
    bench: &mut EmBench,
    config: &VirusGenConfig,
) -> Result<Virus, DomainError> {
    generate_em_virus_observed(name, domain, bench, config, |_| {})
}

/// [`generate_em_virus`] with a per-generation observer: `on_generation`
/// receives a [`GenerationProgress`] at every generation barrier (after
/// telemetry for that generation has been emitted). The observer runs on
/// the coordinator thread, in generation order.
///
/// # Errors
///
/// As for [`generate_em_virus`].
pub fn generate_em_virus_observed(
    name: &str,
    domain: &VoltageDomain,
    bench: &mut EmBench,
    config: &VirusGenConfig,
    on_generation: impl FnMut(&GenerationProgress),
) -> Result<Virus, DomainError> {
    // Re-home the caller's rig behind a live backend for the duration of
    // the campaign, then hand it back with its analyzer time folded in.
    let rig = std::mem::replace(bench, EmBench::new(0));
    let mut backend = LiveBackend::single(domain.clone(), rig, config.run.clone());
    let result = generate_em_virus_on(name, &mut backend, domain.name(), config, on_generation);
    *bench = backend.into_bench();
    result
}

/// [`generate_em_virus_observed`] over any [`MeasurementBackend`]: the GA
/// never touches a domain or a bench directly — every observation flows
/// through `backend`, so the same campaign runs against the live chain, a
/// recording wrapper, or a replayed trace with byte-identical telemetry.
///
/// When [`VirusGenConfig::cache_fitness`] is set the backend is wrapped
/// in a [`CachingBackend`] for the duration of the campaign, so repeated
/// genomes are served from memory exactly as the old genome-keyed cache
/// did (including cached failures).
///
/// # Errors
///
/// As for [`generate_em_virus`]; backend-layer failures (missing replay
/// entries, trace I/O) surface as [`DomainError::Backend`].
pub fn generate_em_virus_on<B: MeasurementBackend + ?Sized>(
    name: &str,
    backend: &mut B,
    domain_name: &str,
    config: &VirusGenConfig,
    on_generation: impl FnMut(&GenerationProgress),
) -> Result<Virus, DomainError> {
    // No batch limit in the default options, so the drive always runs to
    // completion (`threads`/`lanes` of 0 resolve from `config`, exactly
    // as this entry point always resolved them).
    let virus = generate_em_virus_resumable(
        name,
        backend,
        domain_name,
        config,
        &DriveOptions::default(),
        on_generation,
    )?;
    Ok(virus.expect("campaign without a batch limit always completes"))
}

/// Voltage-feedback GA (the paper's validation baseline): fitness is the
/// maximum voltage droop captured by a scope on the die rail (OC-DSO on
/// the Juno, Kelvin pads + bench scope on the AMD).
///
/// Evaluation parallelizes exactly like [`generate_em_virus`]; scope
/// noise for each individual is drawn from a seed derived from
/// `(scope_seed, generation, index)`, so campaigns are bit-identical for
/// every [`VirusGenConfig::threads`] value.
///
/// # Errors
///
/// As for [`generate_em_virus`].
pub fn generate_voltage_virus(
    name: &str,
    domain: &VoltageDomain,
    scope: &Oscilloscope,
    config: &VirusGenConfig,
    scope_seed: u64,
) -> Result<Virus, DomainError> {
    let pool = InstructionPool::default_for(domain.core_model().isa);
    let repr = KernelRepresentation::new(pool, config.kernel_len);
    let mut engine = GaEngine::new(repr, config.ga.clone());
    engine.set_telemetry(config.telemetry.clone());
    // Summary-only (host-dependent, never emitted into traces).
    config.telemetry.count(
        CounterId::SimdDispatchLevel,
        emvolt_simd::level().code() as u64,
    );
    let mut clock = SimClock::new();
    let threads = resolve_threads(config.threads);

    let quiet = config.telemetry.quiet();
    let runners = RunnerPool::new(domain, &config.run, quiet.clone());
    let fitness_cache: Mutex<HashMap<u64, f64>> = Mutex::new(HashMap::new());
    let measured = AtomicUsize::new(0);
    let nominal_v = domain.voltage();

    let result = {
        let fitness = |kernel: &Kernel, ctx: EvalContext| -> f64 {
            let key = config.cache_fitness.then(|| kernel_identity(kernel));
            if let Some(k) = key {
                if let Some(&cached) = fitness_cache.lock().get(&k) {
                    quiet.count(CounterId::FitnessCacheHits, 1);
                    return cached;
                }
                quiet.count(CounterId::FitnessCacheMisses, 1);
            }
            measured.fetch_add(1, Ordering::Relaxed);
            let seed = match key {
                Some(k) => derive_eval_seed(scope_seed ^ k, 0, 0),
                None => derive_eval_seed(scope_seed, ctx.generation, ctx.index),
            };
            let score = runners
                .with(|slot| {
                    slot.runner
                        .run_into(kernel, config.loaded_cores, &mut slot.run)?;
                    let mut rng = StdRng::seed_from_u64(seed);
                    let shot = scope.capture(&slot.run.v_die, &mut rng);
                    Ok(match config.voltage_metric {
                        VoltageMetric::MaxDroop => shot.max_droop_below(nominal_v),
                        VoltageMetric::PeakToPeak => shot.peak_to_peak(),
                    })
                })
                .unwrap_or(0.0);
            if let Some(k) = key {
                fitness_cache.lock().insert(k, score);
            }
            score
        };
        engine.run_batch(&fitness, threads, |_| {
            let evaluated = measured.swap(0, Ordering::Relaxed);
            clock.advance(evaluated as f64 * (INDIVIDUAL_OVERHEAD_SECONDS + 2.0));
        })
    };

    let history = result
        .history
        .iter()
        .map(|s| GenerationRecord {
            index: s.index,
            best_fitness: s.best_fitness,
            mean_fitness: s.mean_fitness,
            dominant_hz: 0.0,
            droop_v: Some(s.best_fitness),
        })
        .collect();

    let mut post = match runners.idle.into_inner().pop() {
        Some(slot) => slot,
        None => EvalSlot::new(domain, &config.run, &quiet)?,
    };
    post.runner
        .run_into(&result.best, config.loaded_cores, &mut post.run)?;
    let dominant = dominant_from_run(&post.run);
    Ok(Virus {
        name: name.to_owned(),
        kernel: result.best,
        fitness: result.best_fitness,
        dominant_hz: dominant,
        history,
        generation_best: result.generation_best,
        campaign: clock,
    })
}

/// Re-measures each generation-best kernel's droop through a scope —
/// the paper's Fig. 7 right axis is produced exactly this way after the
/// EM-driven search completes.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn annotate_droop(
    virus: &mut Virus,
    domain: &VoltageDomain,
    scope: &Oscilloscope,
    config: &VirusGenConfig,
    scope_seed: u64,
) -> Result<(), DomainError> {
    let mut rng = StdRng::seed_from_u64(scope_seed);
    let kernels = virus.generation_best.clone();
    for (record, kernel) in virus.history.iter_mut().zip(&kernels) {
        let run = domain.run(kernel, config.loaded_cores, &config.run)?;
        let shot = scope.capture(&run.v_die, &mut rng);
        record.droop_v = Some(shot.max_droop_below(domain.voltage()));
    }
    Ok(())
}

/// Dominant frequency straight from the die-current spectrum (no
/// analyzer noise) — used where an exact value is needed for reporting.
pub fn dominant_from_run(run: &DomainRun) -> f64 {
    use emvolt_dsp::{Spectrum, Window};
    let spec = Spectrum::of_trace(&run.i_die, Window::Hann);
    spec.peak_in_band(RESONANCE_BAND.0, RESONANCE_BAND.1)
        .map(|(f, _)| f)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_platform::a72_pdn;

    fn small_config() -> VirusGenConfig {
        VirusGenConfig {
            ga: GaConfig {
                population: 8,
                generations: 6,
                ..GaConfig::default()
            },
            kernel_len: 20,
            samples_per_individual: 3,
            ..VirusGenConfig::default()
        }
    }

    fn a72() -> VoltageDomain {
        VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
    }

    #[test]
    fn em_ga_improves_and_tracks_resonance() {
        let domain = a72();
        let mut bench = EmBench::new(11);
        let virus = generate_em_virus("a72em-test", &domain, &mut bench, &small_config()).unwrap();
        assert_eq!(virus.history.len(), 6);
        // Fitness improves (or at least does not regress) overall.
        let first = virus.history.first().unwrap().best_fitness;
        let last = virus.history.last().unwrap().best_fitness;
        assert!(last >= first - 1.0, "no improvement: {first} -> {last}");
        // Dominant frequency within the search band.
        assert!(
            (RESONANCE_BAND.0..=RESONANCE_BAND.1).contains(&virus.dominant_hz),
            "dominant {:.2e}",
            virus.dominant_hz
        );
        // Campaign accounting: 8 individuals x 6 generations, 3 samples
        // each at 0.6 s plus 2 s overhead.
        let expected = 8.0 * 6.0 * (3.0 * 0.6 + 2.0);
        assert!(
            virus.campaign.seconds() >= expected - 1e-6,
            "campaign {} < {expected}",
            virus.campaign.seconds()
        );
    }

    #[test]
    fn voltage_ga_peak_to_peak_metric_also_works() {
        let domain = a72();
        let scope = Oscilloscope::new(emvolt_inst::ScopeConfig::oc_dso());
        let cfg = VirusGenConfig {
            voltage_metric: VoltageMetric::PeakToPeak,
            ..small_config()
        };
        let virus = generate_voltage_virus("p2p-test", &domain, &scope, &cfg, 4).unwrap();
        assert!(virus.fitness > 0.0, "p2p {}", virus.fitness);
        // Peak-to-peak is at least the droop for any trace, so the p2p-
        // driven run's fitness should exceed a typical droop figure.
        assert!(
            virus.fitness > 0.02,
            "p2p metric too small: {}",
            virus.fitness
        );
    }

    #[test]
    fn voltage_ga_produces_droop() {
        let domain = a72();
        let scope = Oscilloscope::new(emvolt_inst::ScopeConfig::oc_dso());
        let virus =
            generate_voltage_virus("a72ocdso-test", &domain, &scope, &small_config(), 3).unwrap();
        assert!(virus.fitness > 0.0, "droop {}", virus.fitness);
        assert!(virus.history.iter().all(|r| r.droop_v.is_some()));
    }
}
