//! EM-amplitude-driven dI/dt virus generation (§3, §5.1).
//!
//! A GA evolves 50-instruction loop bodies; each individual is executed
//! on the target domain and its fitness is the spectrum-analyzer metric —
//! the mean root square of 30 max-amplitude samples in the 50–200 MHz
//! band. No voltage probe is involved: this is the paper's central
//! zero-overhead characterization flow. A voltage-feedback variant
//! (OC-DSO / Kelvin-pad driven, used by the paper for validation) is also
//! provided.

use emvolt_ga::{GaConfig, GaEngine, KernelRepresentation};
use emvolt_inst::Oscilloscope;
use emvolt_isa::{InstructionPool, Kernel};
use emvolt_platform::{
    DomainError, DomainRun, EmBench, RunConfig, SessionClock, VoltageDomain,
    INDIVIDUAL_MEASUREMENT_SECONDS, INDIVIDUAL_OVERHEAD_SECONDS, RESONANCE_BAND,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which scope statistic drives the voltage-feedback GA (§3.1(b): "the
/// target metric is either maximum voltage droop or peak to peak").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VoltageMetric {
    /// Maximise the worst excursion below nominal.
    #[default]
    MaxDroop,
    /// Maximise the peak-to-peak voltage amplitude.
    PeakToPeak,
}

/// Configuration for a virus-generation campaign.
#[derive(Debug, Clone)]
pub struct VirusGenConfig {
    /// GA engine parameters (population 50, 60 generations by default).
    pub ga: GaConfig,
    /// Instructions per individual (50 in the paper, Table 2).
    pub kernel_len: usize,
    /// Cores loaded with each individual during measurement.
    pub loaded_cores: usize,
    /// Spectrum samples per individual (30 in the paper).
    pub samples_per_individual: usize,
    /// Search band in Hz; defaults to the paper's 50–200 MHz.
    pub band: (f64, f64),
    /// Scope statistic used by the voltage-feedback variant.
    pub voltage_metric: VoltageMetric,
    /// Physics fidelity per run.
    pub run: RunConfig,
}

impl Default for VirusGenConfig {
    fn default() -> Self {
        VirusGenConfig {
            ga: GaConfig::default(),
            kernel_len: 50,
            loaded_cores: 1,
            samples_per_individual: 30,
            band: RESONANCE_BAND,
            voltage_metric: VoltageMetric::default(),
            run: RunConfig::fast(),
        }
    }
}

/// Per-generation record of the fittest individual (the series plotted in
/// Figs. 7, 12 and 17).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationRecord {
    /// Generation index.
    pub index: usize,
    /// Best fitness: EM metric in dBm (or droop in volts for the
    /// voltage-driven variant).
    pub best_fitness: f64,
    /// Mean fitness of the generation.
    pub mean_fitness: f64,
    /// Dominant frequency of the strongest individual, Hz.
    pub dominant_hz: f64,
    /// Maximum droop of the strongest individual in volts, when measured
    /// (the paper re-runs each generation's best against the OC-DSO).
    pub droop_v: Option<f64>,
}

/// The product of a virus-generation campaign.
#[derive(Debug, Clone)]
pub struct Virus {
    /// Name tag, e.g. `"a72em"`.
    pub name: String,
    /// The winning kernel.
    pub kernel: Kernel,
    /// Its final fitness (dBm for EM-driven, volts for voltage-driven).
    pub fitness: f64,
    /// Dominant frequency of the winner, Hz.
    pub dominant_hz: f64,
    /// Per-generation progression.
    pub history: Vec<GenerationRecord>,
    /// The fittest kernel of each generation (re-run by the paper against
    /// the OC-DSO to produce the droop series of Fig. 7).
    pub generation_best: Vec<Kernel>,
    /// Simulated wall-clock the physical campaign would have taken.
    pub campaign: SessionClock,
}

/// Runs the EM-driven GA (the paper's §5.1 flow) on `domain`.
///
/// # Errors
///
/// Returns the first simulation error encountered; individuals that fail
/// to simulate (e.g. exotic kernels hitting the cycle cap) are scored at
/// the noise floor instead of aborting the campaign, so errors surface
/// only from the final re-measurement.
pub fn generate_em_virus(
    name: &str,
    domain: &VoltageDomain,
    bench: &mut EmBench,
    config: &VirusGenConfig,
) -> Result<Virus, DomainError> {
    let pool = InstructionPool::default_for(domain.core_model().isa);
    let repr = KernelRepresentation::new(pool, config.kernel_len);
    let mut engine = GaEngine::new(repr, config.ga.clone());
    let mut clock = SessionClock::new();

    let result = {
        let bench_ref: &mut EmBench = bench;
        let clock_ref = &mut clock;
        let mut fitness = |kernel: &Kernel| -> f64 {
            // 0.6 s per spectrum sample plus orchestration overhead (the
            // paper's 30-sample measurement costs ~18 s).
            clock_ref.advance(
                config.samples_per_individual as f64 * INDIVIDUAL_MEASUREMENT_SECONDS / 30.0
                    + INDIVIDUAL_OVERHEAD_SECONDS,
            );
            match domain.run(kernel, config.loaded_cores, &config.run) {
                Ok(run) => {
                    bench_ref
                        .measure_in_band(
                            &run,
                            config.band.0,
                            config.band.1,
                            config.samples_per_individual,
                        )
                        .metric_dbm
                }
                Err(_) => -200.0,
            }
        };
        engine.run(&mut fitness, |_| {})
    };

    // Re-measure each generation's best to record its dominant frequency
    // (the paper reads this off the analyzer marker per generation).
    let mut dominant_of_best = Vec::with_capacity(result.generation_best.len());
    for k in &result.generation_best {
        let run = domain.run(k, config.loaded_cores, &config.run)?;
        let reading = bench.measure_in_band(&run, config.band.0, config.band.1, 5);
        dominant_of_best.push(reading.dominant_hz);
    }

    let history = result
        .history
        .iter()
        .zip(&dominant_of_best)
        .map(|(s, &dom)| GenerationRecord {
            index: s.index,
            best_fitness: s.best_fitness,
            mean_fitness: s.mean_fitness,
            dominant_hz: dom,
            droop_v: None,
        })
        .collect();

    let final_run = domain.run(&result.best, config.loaded_cores, &config.run)?;
    let final_reading =
        bench.measure_in_band(&final_run, config.band.0, config.band.1, config.samples_per_individual);

    Ok(Virus {
        name: name.to_owned(),
        kernel: result.best,
        fitness: result.best_fitness,
        dominant_hz: final_reading.dominant_hz,
        history,
        generation_best: result.generation_best,
        campaign: clock,
    })
}

/// Voltage-feedback GA (the paper's validation baseline): fitness is the
/// maximum voltage droop captured by a scope on the die rail (OC-DSO on
/// the Juno, Kelvin pads + bench scope on the AMD).
///
/// # Errors
///
/// As for [`generate_em_virus`].
pub fn generate_voltage_virus(
    name: &str,
    domain: &VoltageDomain,
    scope: &Oscilloscope,
    config: &VirusGenConfig,
    scope_seed: u64,
) -> Result<Virus, DomainError> {
    let pool = InstructionPool::default_for(domain.core_model().isa);
    let repr = KernelRepresentation::new(pool, config.kernel_len);
    let mut engine = GaEngine::new(repr, config.ga.clone());
    let mut clock = SessionClock::new();
    let mut rng = StdRng::seed_from_u64(scope_seed);

    let result = {
        let clock_ref = &mut clock;
        let rng_ref = &mut rng;
        let mut fitness = |kernel: &Kernel| -> f64 {
            clock_ref.advance(INDIVIDUAL_OVERHEAD_SECONDS + 2.0);
            match domain.run(kernel, config.loaded_cores, &config.run) {
                Ok(run) => {
                    let shot = scope.capture(&run.v_die, rng_ref);
                    match config.voltage_metric {
                        VoltageMetric::MaxDroop => shot.max_droop_below(domain.voltage()),
                        VoltageMetric::PeakToPeak => shot.peak_to_peak(),
                    }
                }
                Err(_) => 0.0,
            }
        };
        engine.run(&mut fitness, |_| {})
    };

    let history = result
        .history
        .iter()
        .map(|s| GenerationRecord {
            index: s.index,
            best_fitness: s.best_fitness,
            mean_fitness: s.mean_fitness,
            dominant_hz: 0.0,
            droop_v: Some(s.best_fitness),
        })
        .collect();

    let final_run = domain.run(&result.best, config.loaded_cores, &config.run)?;
    let dominant = dominant_from_run(&final_run);
    Ok(Virus {
        name: name.to_owned(),
        kernel: result.best,
        fitness: result.best_fitness,
        dominant_hz: dominant,
        history,
        generation_best: result.generation_best,
        campaign: clock,
    })
}

/// Re-measures each generation-best kernel's droop through a scope —
/// the paper's Fig. 7 right axis is produced exactly this way after the
/// EM-driven search completes.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn annotate_droop(
    virus: &mut Virus,
    domain: &VoltageDomain,
    scope: &Oscilloscope,
    config: &VirusGenConfig,
    scope_seed: u64,
) -> Result<(), DomainError> {
    let mut rng = StdRng::seed_from_u64(scope_seed);
    let kernels = virus.generation_best.clone();
    for (record, kernel) in virus.history.iter_mut().zip(&kernels) {
        let run = domain.run(kernel, config.loaded_cores, &config.run)?;
        let shot = scope.capture(&run.v_die, &mut rng);
        record.droop_v = Some(shot.max_droop_below(domain.voltage()));
    }
    Ok(())
}

/// Dominant frequency straight from the die-current spectrum (no
/// analyzer noise) — used where an exact value is needed for reporting.
pub fn dominant_from_run(run: &DomainRun) -> f64 {
    use emvolt_dsp::{Spectrum, Window};
    let spec = Spectrum::of_trace(&run.i_die, Window::Hann);
    spec.peak_in_band(RESONANCE_BAND.0, RESONANCE_BAND.1)
        .map(|(f, _)| f)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_platform::a72_pdn;

    fn small_config() -> VirusGenConfig {
        VirusGenConfig {
            ga: GaConfig {
                population: 8,
                generations: 6,
                ..GaConfig::default()
            },
            kernel_len: 20,
            samples_per_individual: 3,
            ..VirusGenConfig::default()
        }
    }

    fn a72() -> VoltageDomain {
        VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
    }

    #[test]
    fn em_ga_improves_and_tracks_resonance() {
        let domain = a72();
        let mut bench = EmBench::new(11);
        let virus =
            generate_em_virus("a72em-test", &domain, &mut bench, &small_config()).unwrap();
        assert_eq!(virus.history.len(), 6);
        // Fitness improves (or at least does not regress) overall.
        let first = virus.history.first().unwrap().best_fitness;
        let last = virus.history.last().unwrap().best_fitness;
        assert!(last >= first - 1.0, "no improvement: {first} -> {last}");
        // Dominant frequency within the search band.
        assert!(
            (RESONANCE_BAND.0..=RESONANCE_BAND.1).contains(&virus.dominant_hz),
            "dominant {:.2e}",
            virus.dominant_hz
        );
        // Campaign accounting: 8 individuals x 6 generations, 3 samples
        // each at 0.6 s plus 2 s overhead.
        let expected = 8.0 * 6.0 * (3.0 * 0.6 + 2.0);
        assert!(
            virus.campaign.seconds() >= expected - 1e-6,
            "campaign {} < {expected}",
            virus.campaign.seconds()
        );
    }

    #[test]
    fn voltage_ga_peak_to_peak_metric_also_works() {
        let domain = a72();
        let scope = Oscilloscope::new(emvolt_inst::ScopeConfig::oc_dso());
        let cfg = VirusGenConfig {
            voltage_metric: VoltageMetric::PeakToPeak,
            ..small_config()
        };
        let virus = generate_voltage_virus("p2p-test", &domain, &scope, &cfg, 4).unwrap();
        assert!(virus.fitness > 0.0, "p2p {}", virus.fitness);
        // Peak-to-peak is at least the droop for any trace, so the p2p-
        // driven run's fitness should exceed a typical droop figure.
        assert!(virus.fitness > 0.02, "p2p metric too small: {}", virus.fitness);
    }

    #[test]
    fn voltage_ga_produces_droop() {
        let domain = a72();
        let scope = Oscilloscope::new(emvolt_inst::ScopeConfig::oc_dso());
        let virus =
            generate_voltage_virus("a72ocdso-test", &domain, &scope, &small_config(), 3).unwrap();
        assert!(virus.fitness > 0.0, "droop {}", virus.fitness);
        assert!(virus.history.iter().all(|r| r.droop_v.is_some()));
    }
}
