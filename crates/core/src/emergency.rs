//! Voltage-emergency analysis.
//!
//! A *voltage emergency* (§1 of the paper, after Reddi et al.) is an
//! excursion of the die voltage below a safety threshold. Beyond the
//! single worst droop that V_MIN testing keys on, the emergency *rate*
//! at a given depth characterizes how persistently a workload stresses
//! the margin — resonant viruses produce quasi-periodic emergencies at
//! the PDN frequency, while benchmarks produce rare isolated ones.

use emvolt_inst::{Edge, Trigger};
use emvolt_platform::DomainRun;

/// Emergency statistics for one run at one threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmergencyStats {
    /// Threshold used, in volts below the supply.
    pub depth_v: f64,
    /// Number of distinct threshold crossings in the observed window.
    pub events: usize,
    /// Events per second of observed execution.
    pub rate_hz: f64,
    /// Deepest excursion observed, in volts below the supply.
    pub worst_droop_v: f64,
}

/// Counts emergencies: excursions of V_DIE below
/// `supply - depth_below_supply`.
pub fn emergency_stats(run: &DomainRun, depth_below_supply: f64) -> EmergencyStats {
    let trigger = Trigger {
        level_v: run.supply_v - depth_below_supply,
        edge: Edge::Falling,
        pretrigger: 0,
        capture: 0,
    };
    let events = trigger.count_events(&run.v_die);
    let duration = run.v_die.duration().max(f64::MIN_POSITIVE);
    EmergencyStats {
        depth_v: depth_below_supply,
        events,
        rate_hz: events as f64 / duration,
        worst_droop_v: run.max_droop(),
    }
}

/// Emergency counts across a ladder of threshold depths — the
/// "emergencies versus margin" profile that tells a designer how much
/// guardband buys how much quiet.
pub fn emergency_profile(run: &DomainRun, depths_v: &[f64]) -> Vec<EmergencyStats> {
    depths_v.iter().map(|&d| emergency_stats(run, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::kernels::resonant_stress_kernel;
    use emvolt_isa::Isa;
    use emvolt_platform::{a72_pdn, spec2006_suite, RunConfig, VoltageDomain};

    fn a72() -> VoltageDomain {
        VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
    }

    #[test]
    fn resonant_virus_has_periodic_emergencies() {
        let d = a72();
        let cfg = RunConfig::fast();
        let run = d
            .run(&resonant_stress_kernel(Isa::ArmV8, 12, 17), 2, &cfg)
            .unwrap();
        // At a shallow threshold the resonant oscillation crosses nearly
        // every period: tens of MHz of emergency rate.
        let stats = emergency_stats(&run, 0.02);
        assert!(stats.events > 20, "only {} events", stats.events);
        assert!(
            stats.rate_hz > 5e6,
            "resonant emergency rate {} Hz",
            stats.rate_hz
        );
    }

    #[test]
    fn benchmark_emergencies_are_rarer_than_virus_ones() {
        let d = a72();
        let cfg = RunConfig::fast();
        let suite = spec2006_suite(Isa::ArmV8);
        let gcc = suite.iter().find(|w| w.name == "gcc").expect("gcc exists");
        let run_gcc = d.run(&gcc.kernel, 2, &cfg).unwrap();
        let run_virus = d
            .run(&resonant_stress_kernel(Isa::ArmV8, 12, 17), 2, &cfg)
            .unwrap();
        let depth = 0.025;
        let s_gcc = emergency_stats(&run_gcc, depth);
        let s_virus = emergency_stats(&run_virus, depth);
        assert!(
            s_virus.events > 4 * s_gcc.events.max(1),
            "virus {} vs gcc {}",
            s_virus.events,
            s_gcc.events
        );
    }

    #[test]
    fn profile_is_monotone_in_depth() {
        let d = a72();
        let run = d
            .run(
                &resonant_stress_kernel(Isa::ArmV8, 12, 17),
                2,
                &RunConfig::fast(),
            )
            .unwrap();
        let profile = emergency_profile(&run, &[0.01, 0.02, 0.03, 0.05, 0.09]);
        for w in profile.windows(2) {
            assert!(
                w[1].events <= w[0].events,
                "deeper thresholds must see fewer events: {profile:?}"
            );
        }
        // Beyond the worst droop there are no events at all.
        let beyond = emergency_stats(&run, run.max_droop() + 0.005);
        assert_eq!(beyond.events, 0);
    }
}
