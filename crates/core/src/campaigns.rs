//! Step-engine ports of the core campaigns.
//!
//! [`VirusCampaign`] and [`SweepCampaign`] decompose the GA virus search
//! (§5.1) and the fast resonance sweep (§5.3) into the
//! [`Campaign`] state machine of `emvolt-engine`: every batch of
//! measurements is proposed by a pure `next_batch`, absorbed on the
//! single-threaded coordinator (where all spans, histograms and the
//! campaign clock are charged, exactly as the legacy serial sections
//! did), and the whole in-flight state — GA population, engine RNG
//! mid-stream, dominant-frequency memo, campaign clock — snapshots to a
//! checkpoint and restores bit-identically.
//!
//! The legacy entry points ([`generate_em_virus_on`] /
//! [`fast_resonance_sweep_on`]) are thin drivers over these campaigns
//! with no checkpointing configured; their stdout, telemetry and results
//! are byte-identical to the pre-engine implementations.
//!
//! [`generate_em_virus_on`]: crate::generate_em_virus_on
//! [`fast_resonance_sweep_on`]: crate::fast_resonance_sweep_on

use crate::fast_sweep::{FastSweepConfig, FastSweepResult, SweepPoint};
use crate::ga_virus::{
    kernel_identity, resolve_lanes, resolve_threads, GenerationProgress, GenerationRecord, Virus,
    VirusGenConfig,
};
use emvolt_backend::{
    run_config_fingerprint, BackendError, BandSpec, CachingBackend, EmObservation,
    MeasurementBackend,
};
use emvolt_engine::{
    drive, snap, Campaign, DriveOptions, DriveOutcome, Fingerprint, StepBatch, StepLoad,
    StepOutcome, StepRequest,
};
use emvolt_ga::{derive_eval_seed, GaState, GenerationStats, KernelRepresentation};
use emvolt_isa::kernels::sweep_kernel;
use emvolt_isa::{InstructionPool, Kernel, KernelSpec};
use emvolt_obs::{CounterId, HistId, Layer, Telemetry};
use emvolt_platform::{
    DomainError, EmReading, SimClock, INDIVIDUAL_MEASUREMENT_SECONDS, INDIVIDUAL_OVERHEAD_SECONDS,
};
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;

/// Maps a checkpoint decode error into the domain error space.
fn ck(e: impl std::fmt::Display) -> DomainError {
    DomainError::Checkpoint(e.to_string())
}

/// Serializes a kernel through its stable interchange form.
fn kernel_value(kernel: &Kernel) -> Value {
    KernelSpec::from_kernel(kernel).to_value()
}

/// Restores a kernel written by [`kernel_value`].
fn kernel_from_value(v: &Value) -> Result<Kernel, DomainError> {
    let spec = KernelSpec::from_value(v).map_err(ck)?;
    spec.to_kernel().map_err(ck)
}

/// Serializes an observation (all floats bit-exact).
fn obs_value(o: &EmObservation) -> Value {
    snap::obj(vec![
        ("metric_dbm", snap::hex(o.reading.metric_dbm)),
        ("dominant_hz", snap::hex(o.reading.dominant_hz)),
        ("loop_hz", snap::hex(o.loop_frequency_hz)),
        ("ipc", snap::hex(o.ipc)),
        ("droop_v", snap::hex(o.max_droop_v)),
        ("p2p_v", snap::hex(o.peak_to_peak_v)),
        ("band_lo", snap::hex(o.band.0)),
        ("band_hi", snap::hex(o.band.1)),
        ("cached", Value::Bool(o.cached)),
    ])
}

/// Restores an observation written by [`obs_value`].
fn obs_from_value(v: &Value) -> Result<EmObservation, DomainError> {
    let f = |key| snap::unhex(snap::field(v, key).map_err(ck)?).map_err(ck);
    Ok(EmObservation {
        reading: EmReading {
            metric_dbm: f("metric_dbm")?,
            dominant_hz: f("dominant_hz")?,
        },
        loop_frequency_hz: f("loop_hz")?,
        ipc: f("ipc")?,
        max_droop_v: f("droop_v")?,
        peak_to_peak_v: f("p2p_v")?,
        band: (f("band_lo")?, f("band_hi")?),
        cached: bool::from_value(snap::field(v, "cached").map_err(ck)?).map_err(ck)?,
    })
}

/// Serializes mid-stream RNG words.
fn rng_value(rng: &rand::rngs::StdRng) -> Value {
    Value::Arr(rng.state().iter().map(|&w| snap::hex_u64(w)).collect())
}

/// Restores an RNG written by [`rng_value`].
fn rng_from_value(v: &Value) -> Result<rand::rngs::StdRng, DomainError> {
    let words = snap::arr(v).map_err(ck)?;
    if words.len() != 4 {
        return Err(ck("rng state must hold 4 words"));
    }
    let mut state = [0u64; 4];
    for (slot, w) in state.iter_mut().zip(words) {
        *slot = snap::unhex_u64(w).map_err(ck)?;
    }
    Ok(rand::rngs::StdRng::from_state(state))
}

/// The first outcome of a single-request batch, or the failure it carried.
fn sole_observation(outcomes: &[StepOutcome]) -> Result<EmObservation, DomainError> {
    match outcomes.first() {
        Some(StepOutcome::Observation(obs)) => Ok(*obs),
        Some(StepOutcome::CachedFailure(msg)) | Some(StepOutcome::Failed(msg)) => {
            Err(DomainError::Backend(msg.clone()))
        }
        None => Err(DomainError::Backend(
            "measurement batch returned no outcome".to_string(),
        )),
    }
}

/// One worker-side fitness evaluation, logged for deterministic span
/// emission at the generation barrier.
struct EvalRecord {
    index: usize,
    score: f64,
    cached: bool,
}

/// The GA virus search as a resumable step campaign.
///
/// Phases are *derived* from the state rather than stored: while the GA
/// has generations left, each batch is one generation's population
/// (lane-dispatched, seeds derived from `(seed, generation, index)`);
/// then each not-yet-memoized generation champion is re-measured for its
/// dominant frequency (serial, 5 samples, memoized by kernel identity);
/// then the overall best is re-measured once at full sample count; then
/// the campaign is complete.
pub struct VirusCampaign<F: FnMut(&GenerationProgress)> {
    name: String,
    domain_name: String,
    config: VirusGenConfig,
    repr: KernelRepresentation,
    lanes: usize,
    tel: Telemetry,
    state: GaState<Kernel>,
    clock: SimClock,
    per_individual_s: f64,
    /// `(generation_best index, dominant Hz)` in measurement order — the
    /// serializable form of `memo` (identities are re-derived on restore
    /// rather than trusting hasher stability across binaries).
    dominant: Vec<(usize, f64)>,
    memo: HashMap<u64, f64>,
    final_obs: Option<EmObservation>,
    fingerprint: u64,
    on_generation: F,
}

impl<F: FnMut(&GenerationProgress)> VirusCampaign<F> {
    /// Builds a fresh campaign over `isa` kernels.
    ///
    /// `lanes` must be the resolved lane width the driver will dispatch
    /// with — the lane-bookkeeping counters are a function of it.
    pub fn new(
        name: &str,
        domain_name: &str,
        isa: emvolt_isa::Isa,
        config: &VirusGenConfig,
        lanes: usize,
        on_generation: F,
    ) -> Self {
        let pool = InstructionPool::default_for(isa);
        let repr = KernelRepresentation::new(pool, config.kernel_len);
        let state = GaState::new(&repr, &config.ga);
        // 0.6 s per spectrum sample plus orchestration overhead (the
        // paper's 30-sample measurement costs ~18 s).
        let per_individual_s =
            config.samples_per_individual as f64 * INDIVIDUAL_MEASUREMENT_SECONDS / 30.0
                + INDIVIDUAL_OVERHEAD_SECONDS;
        let fingerprint = Fingerprint::new()
            .str("virus")
            .str(name)
            .str(domain_name)
            .u64(run_config_fingerprint(&config.run))
            .u64(config.ga.population as u64)
            .u64(config.ga.generations as u64)
            .u64(config.ga.tournament_k as u64)
            .f64(config.ga.mutation_rate)
            .u64(config.ga.elitism as u64)
            .u64(config.ga.seed)
            .u64(config.kernel_len as u64)
            .u64(config.loaded_cores as u64)
            .u64(config.samples_per_individual as u64)
            .f64(config.band.0)
            .f64(config.band.1)
            .u64(u64::from(config.cache_fitness))
            .finish();
        VirusCampaign {
            name: name.to_owned(),
            domain_name: domain_name.to_owned(),
            tel: config.telemetry.clone(),
            config: config.clone(),
            repr,
            lanes: lanes.max(1),
            state,
            clock: SimClock::new(),
            per_individual_s,
            dominant: Vec::new(),
            memo: HashMap::new(),
            final_obs: None,
            fingerprint,
            on_generation,
        }
    }

    /// The serial rig re-measurement request (stateful analyzer RNG).
    fn rig_request(&self, kernel: &Kernel, samples: usize) -> StepRequest {
        StepRequest {
            domain: self.domain_name.clone(),
            load: StepLoad::Kernel {
                kernel: kernel.clone(),
                loaded_cores: self.config.loaded_cores,
            },
            freq_hz: None,
            band: BandSpec::Explicit {
                lo_hz: self.config.band.0,
                hi_hz: self.config.band.1,
            },
            samples,
            seed: None,
        }
    }

    /// The first generation champion whose dominant frequency is not yet
    /// memoized (the same champion often survives many generations).
    fn next_dominant(&self) -> Option<(usize, &Kernel)> {
        self.state
            .generation_best
            .iter()
            .enumerate()
            .find(|(_, k)| !self.memo.contains_key(&kernel_identity(k)))
    }

    /// Scores one generation's outcomes and runs the generation barrier:
    /// clock advance, lane bookkeeping, eval/generation spans, fitness
    /// histograms and the progress observer — all on the coordinator, in
    /// exactly the order the legacy barrier closure used.
    fn absorb_generation(&mut self, outcomes: &[StepOutcome]) -> Result<(), DomainError> {
        let mut measured = 0usize;
        let mut hits = 0usize;
        let mut records: Vec<EvalRecord> = Vec::new();
        let log_enabled = self.tel.sink_enabled();
        let log_eval = |records: &mut Vec<EvalRecord>, index: usize, score: f64, cached| {
            if log_enabled {
                records.push(EvalRecord {
                    index,
                    score,
                    cached,
                });
            }
        };
        let scores: Vec<f64> = outcomes
            .iter()
            .enumerate()
            .map(|(index, outcome)| match outcome {
                StepOutcome::Observation(obs) if obs.cached => {
                    hits += 1;
                    log_eval(&mut records, index, obs.reading.metric_dbm, true);
                    obs.reading.metric_dbm
                }
                StepOutcome::Observation(obs) => {
                    measured += 1;
                    log_eval(&mut records, index, obs.reading.metric_dbm, false);
                    obs.reading.metric_dbm
                }
                // A kernel that failed once keeps its noise-floor score
                // without re-simulation, like the old cached -200.0.
                StepOutcome::CachedFailure(_) => {
                    hits += 1;
                    log_eval(&mut records, index, -200.0, true);
                    -200.0
                }
                StepOutcome::Failed(_) => {
                    measured += 1;
                    log_eval(&mut records, index, -200.0, false);
                    -200.0
                }
            })
            .collect();

        let VirusCampaign {
            state,
            repr,
            config,
            tel,
            clock,
            lanes,
            per_individual_s,
            on_generation,
            ..
        } = self;
        state.absorb_scores(repr, &config.ga, tel, &scores, |stats: &GenerationStats| {
            clock.advance(measured as f64 * *per_individual_s);
            tel.set_sim_time(clock.seconds());

            // Lane bookkeeping is charged here on the single-threaded
            // barrier, so the totals are a pure function of the lane
            // configuration — never of the worker-thread schedule.
            tel.count(
                CounterId::BatchLanes,
                config.ga.population.div_ceil(*lanes) as u64,
            );
            tel.count(CounterId::BatchLaneOccupancy, (measured + hits) as u64);

            // Emit eval spans in population order — independent of how
            // threads interleaved during evaluation.
            let mut records = std::mem::take(&mut records);
            records.sort_by_key(|r| r.index);
            let mut worst = f64::INFINITY;
            for r in &records {
                worst = worst.min(r.score);
                tel.record_value(
                    HistId::EvalSeconds,
                    if r.cached { 0.0 } else { *per_individual_s },
                );
                tel.span(
                    "eval",
                    Layer::Core,
                    &[
                        ("generation", stats.index as f64),
                        ("individual", r.index as f64),
                        ("fitness_dbm", r.score),
                        ("cached", if r.cached { 1.0 } else { 0.0 }),
                    ],
                );
            }
            if !records.is_empty() {
                tel.record_value(HistId::FitnessBest, stats.best_fitness);
                tel.record_value(HistId::FitnessMean, stats.mean_fitness);
                tel.record_value(HistId::FitnessWorst, worst);
            }
            let worst_dbm = if worst.is_finite() {
                worst
            } else {
                stats.best_fitness
            };
            tel.span(
                "generation",
                Layer::Ga,
                &[
                    ("index", stats.index as f64),
                    ("best_dbm", stats.best_fitness),
                    ("mean_dbm", stats.mean_fitness),
                    ("worst_dbm", worst_dbm),
                    ("evaluated", (measured + hits) as f64),
                    ("cache_hits", hits as f64),
                ],
            );
            on_generation(&GenerationProgress {
                index: stats.index,
                best_dbm: stats.best_fitness,
                mean_dbm: stats.mean_fitness,
                worst_dbm,
                evaluated: measured + hits,
                cache_hits: hits,
                sim_seconds: clock.seconds(),
            });
        });
        Ok(())
    }

    /// Finishes a complete campaign: emits the campaign span and the
    /// telemetry summaries, closes the backend, and builds the virus —
    /// byte-identical to the legacy post-campaign section.
    ///
    /// # Errors
    ///
    /// [`DomainError::Backend`] if the backend fails to finish.
    ///
    /// # Panics
    ///
    /// Panics if the campaign has not run to completion.
    pub fn into_virus<B: MeasurementBackend + ?Sized>(
        self,
        backend: &mut B,
    ) -> Result<Virus, DomainError> {
        let VirusCampaign {
            name,
            state,
            clock,
            memo,
            final_obs,
            tel,
            ..
        } = self;
        let final_obs = final_obs.expect("campaign ran to completion");
        let result = state.into_result();
        let history = result
            .history
            .iter()
            .zip(&result.generation_best)
            .map(|(s, k)| GenerationRecord {
                index: s.index,
                best_fitness: s.best_fitness,
                mean_fitness: s.mean_fitness,
                dominant_hz: *memo
                    .get(&kernel_identity(k))
                    .expect("dominant memo covers every generation best"),
                droop_v: None,
            })
            .collect();

        tel.span(
            "campaign",
            Layer::Core,
            &[
                ("generations", result.history.len() as f64),
                ("best_dbm", result.best_fitness),
                ("dominant_mhz", final_obs.reading.dominant_hz / 1e6),
                ("sim_seconds", clock.seconds()),
            ],
        );
        tel.emit_counters();
        tel.emit_histograms();
        tel.flush();
        backend.finish().map_err(BackendError::into_domain_error)?;

        Ok(Virus {
            name,
            kernel: result.best,
            fitness: result.best_fitness,
            dominant_hz: final_obs.reading.dominant_hz,
            history,
            generation_best: result.generation_best,
            campaign: clock,
        })
    }
}

/// Builds the virus campaign's snapshot tree. Free-standing so
/// [`Campaign::snapshot_deferred`] can run it on the checkpoint writer
/// thread over cheaply-cloned typed state.
fn render_virus_snapshot(
    state: &GaState<Kernel>,
    clock_s: f64,
    dominant: &[(usize, f64)],
    final_obs: Option<&EmObservation>,
) -> Value {
    let kernels = |ks: &[Kernel]| Value::Arr(ks.iter().map(kernel_value).collect());
    let stats = |s: &GenerationStats| {
        snap::obj(vec![
            ("index", Value::Num(s.index as f64)),
            ("best", snap::hex(s.best_fitness)),
            ("mean", snap::hex(s.mean_fitness)),
            ("best_so_far", snap::hex(s.best_so_far)),
        ])
    };
    snap::obj(vec![
        ("rng", rng_value(&state.rng)),
        ("generation", Value::Num(state.generation as f64)),
        ("population", kernels(&state.population)),
        (
            "best",
            match &state.best {
                Some((k, fit)) => snap::obj(vec![
                    ("kernel", kernel_value(k)),
                    ("fitness", snap::hex(*fit)),
                ]),
                None => Value::Null,
            },
        ),
        (
            "history",
            Value::Arr(state.history.iter().map(stats).collect()),
        ),
        ("generation_best", kernels(&state.generation_best)),
        ("clock_s", snap::hex(clock_s)),
        (
            "dominant",
            Value::Arr(
                dominant
                    .iter()
                    .map(|&(index, hz)| Value::Arr(vec![Value::Num(index as f64), snap::hex(hz)]))
                    .collect(),
            ),
        ),
        (
            "final",
            match final_obs {
                Some(obs) => obs_value(obs),
                None => Value::Null,
            },
        ),
    ])
}

impl<F: FnMut(&GenerationProgress)> Campaign for VirusCampaign<F> {
    fn kind(&self) -> &'static str {
        "virus"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn telemetry(&self) -> Telemetry {
        self.tel.clone()
    }

    fn next_batch(&mut self) -> Option<StepBatch> {
        if !self.state.is_done(&self.config.ga) {
            // Cache mode derives the measurement seed from the genome so
            // a duplicated individual reads identically whether or not
            // its twin was measured first — and so its request key (which
            // the caching wrapper memoizes on) collapses too.
            let generation = self.state.generation;
            let requests = self
                .state
                .population
                .iter()
                .enumerate()
                .map(|(index, kernel)| {
                    let seed = if self.config.cache_fitness {
                        derive_eval_seed(self.config.ga.seed ^ kernel_identity(kernel), 0, 0)
                    } else {
                        derive_eval_seed(self.config.ga.seed, generation, index)
                    };
                    StepRequest {
                        seed: Some(seed),
                        samples: self.config.samples_per_individual,
                        ..self.rig_request(kernel, self.config.samples_per_individual)
                    }
                })
                .collect();
            return Some(StepBatch::lanes(requests));
        }
        if let Some((_, kernel)) = self.next_dominant() {
            let req = self.rig_request(kernel, 5);
            return Some(StepBatch::serial(vec![req]));
        }
        if self.final_obs.is_none() {
            let best = &self
                .state
                .best
                .as_ref()
                .expect("at least one generation ran")
                .0;
            let req = self.rig_request(best, self.config.samples_per_individual);
            return Some(StepBatch::serial(vec![req]));
        }
        None
    }

    fn absorb(&mut self, outcomes: &[StepOutcome]) -> Result<(), DomainError> {
        if !self.state.is_done(&self.config.ga) {
            return self.absorb_generation(outcomes);
        }
        if let Some((index, kernel)) = self.next_dominant() {
            let key = kernel_identity(kernel);
            let obs = sole_observation(outcomes)?;
            self.memo.insert(key, obs.reading.dominant_hz);
            self.dominant.push((index, obs.reading.dominant_hz));
            return Ok(());
        }
        self.final_obs = Some(sole_observation(outcomes)?);
        Ok(())
    }

    fn snapshot(&self) -> Value {
        render_virus_snapshot(
            &self.state,
            self.clock.seconds(),
            &self.dominant,
            self.final_obs.as_ref(),
        )
    }

    fn snapshot_deferred(&self) -> Box<dyn FnOnce() -> Value + Send> {
        // A kernel clones as an `Arc` bump plus a flat instruction
        // memcpy, so capturing the typed state costs microseconds; the
        // allocation-heavy tree build is deferred to the rare debounced
        // checkpoint write. This is what keeps per-batch checkpointing
        // inside the bench-gated 3% overhead budget.
        let state = self.state.clone();
        let clock_s = self.clock.seconds();
        let dominant = self.dominant.clone();
        let final_obs = self.final_obs;
        Box::new(move || render_virus_snapshot(&state, clock_s, &dominant, final_obs.as_ref()))
    }

    fn restore(&mut self, state: &Value) -> Result<(), DomainError> {
        let kernels = |v: &Value| -> Result<Vec<Kernel>, DomainError> {
            snap::arr(v)
                .map_err(ck)?
                .iter()
                .map(kernel_from_value)
                .collect()
        };
        self.state.rng = rng_from_value(snap::field(state, "rng").map_err(ck)?)?;
        self.state.generation = snap::usize_field(state, "generation").map_err(ck)?;
        self.state.population = kernels(snap::field(state, "population").map_err(ck)?)?;
        self.state.best = match snap::field(state, "best").map_err(ck)? {
            Value::Null => None,
            v => Some((
                kernel_from_value(snap::field(v, "kernel").map_err(ck)?)?,
                snap::unhex(snap::field(v, "fitness").map_err(ck)?).map_err(ck)?,
            )),
        };
        self.state.history = snap::arr(snap::field(state, "history").map_err(ck)?)
            .map_err(ck)?
            .iter()
            .map(|v| {
                Ok(GenerationStats {
                    index: snap::usize_field(v, "index").map_err(ck)?,
                    best_fitness: snap::unhex(snap::field(v, "best").map_err(ck)?).map_err(ck)?,
                    mean_fitness: snap::unhex(snap::field(v, "mean").map_err(ck)?).map_err(ck)?,
                    best_so_far: snap::unhex(snap::field(v, "best_so_far").map_err(ck)?)
                        .map_err(ck)?,
                })
            })
            .collect::<Result<_, DomainError>>()?;
        self.state.generation_best = kernels(snap::field(state, "generation_best").map_err(ck)?)?;

        // Cross-field sanity: a corrupt-but-parseable snapshot must fail
        // here with a typed error, not panic later in the drive.
        if self.state.generation_best.len() != self.state.history.len() {
            return Err(ck(format!(
                "snapshot records {} generation champions but {} history entries",
                self.state.generation_best.len(),
                self.state.history.len()
            )));
        }
        if !self.state.is_done(&self.config.ga)
            && self.state.population.len() != self.config.ga.population
        {
            return Err(ck(format!(
                "snapshot population holds {} individuals, config expects {}",
                self.state.population.len(),
                self.config.ga.population
            )));
        }
        if self.state.is_done(&self.config.ga) && self.state.best.is_none() {
            return Err(ck("completed GA state is missing its best individual"));
        }

        self.clock = SimClock::new();
        self.clock
            .advance(snap::unhex(snap::field(state, "clock_s").map_err(ck)?).map_err(ck)?);

        // Rebuild the memo by re-deriving each champion's identity: the
        // snapshot never trusts hash values across binaries.
        self.dominant.clear();
        self.memo.clear();
        for pair in snap::arr(snap::field(state, "dominant").map_err(ck)?).map_err(ck)? {
            let pair = snap::arr(pair).map_err(ck)?;
            let [index_v, hz_v] = pair else {
                return Err(ck("dominant entry must be an [index, hz] pair"));
            };
            let index = f64::from_value(index_v).map_err(ck)? as usize;
            let kernel = self
                .state
                .generation_best
                .get(index)
                .ok_or_else(|| ck(format!("dominant index {index} out of range")))?;
            let hz = snap::unhex(hz_v).map_err(ck)?;
            self.memo.insert(kernel_identity(kernel), hz);
            self.dominant.push((index, hz));
        }
        self.final_obs = match snap::field(state, "final").map_err(ck)? {
            Value::Null => None,
            v => Some(obs_from_value(v)?),
        };
        Ok(())
    }

    fn on_fresh_start(&mut self) {
        // Summary-only (host-dependent, never emitted into traces). A
        // resumed run restores this from its checkpoint instead.
        self.tel.count(
            CounterId::SimdDispatchLevel,
            emvolt_simd::level().code() as u64,
        );
    }
}

/// [`generate_em_virus_on`](crate::generate_em_virus_on) with
/// checkpoint/resume/interrupt wiring: drives a [`VirusCampaign`] under
/// `opts`. Returns `None` when the batch limit interrupted the campaign
/// (its state is in the checkpoint file, ready to resume).
///
/// `opts.threads == 0` / `opts.lanes == 0` resolve exactly as the legacy
/// entry point resolved [`VirusGenConfig::threads`] /
/// [`VirusGenConfig::lanes`].
///
/// # Errors
///
/// As for [`generate_em_virus_on`](crate::generate_em_virus_on), plus
/// [`DomainError::Checkpoint`] from resume verification or a failed
/// checkpoint write.
pub fn generate_em_virus_resumable<B: MeasurementBackend + ?Sized>(
    name: &str,
    backend: &mut B,
    domain_name: &str,
    config: &VirusGenConfig,
    opts: &DriveOptions,
    on_generation: impl FnMut(&GenerationProgress),
) -> Result<Option<Virus>, DomainError> {
    backend
        .configure_run(&config.run)
        .map_err(BackendError::into_domain_error)?;
    let mut opts = opts.clone();
    if opts.threads == 0 {
        opts.threads = resolve_threads(config.threads);
    }
    if opts.lanes == 0 {
        opts.lanes = resolve_lanes(config.lanes);
    }
    if config.cache_fitness {
        let mut caching = CachingBackend::new(&mut *backend);
        run_virus_engine(
            name,
            &mut caching,
            domain_name,
            config,
            &opts,
            on_generation,
        )
    } else {
        run_virus_engine(name, backend, domain_name, config, &opts, on_generation)
    }
}

/// The campaign proper, generic over the (possibly cache-wrapped)
/// backend.
fn run_virus_engine<B: MeasurementBackend + ?Sized>(
    name: &str,
    backend: &mut B,
    domain_name: &str,
    config: &VirusGenConfig,
    opts: &DriveOptions,
    on_generation: impl FnMut(&GenerationProgress),
) -> Result<Option<Virus>, DomainError> {
    let info = backend
        .domain_info(domain_name)
        .ok_or_else(|| DomainError::Backend(format!("unknown domain `{domain_name}`")))?;
    let mut campaign = VirusCampaign::new(
        name,
        domain_name,
        info.isa,
        config,
        opts.lanes,
        on_generation,
    );
    match drive(backend, &mut campaign, opts)? {
        DriveOutcome::Complete => campaign.into_virus(backend).map(Some),
        DriveOutcome::Interrupted => Ok(None),
    }
}

/// The fast resonance sweep as a resumable step campaign: one serial
/// rig measurement per DVFS point, in visit order.
pub struct SweepCampaign {
    domain_name: String,
    config: FastSweepConfig,
    kernel: Kernel,
    max_frequency_hz: f64,
    tel: Telemetry,
    next_point: usize,
    points: Vec<SweepPoint>,
    clock: SimClock,
    fingerprint: u64,
}

impl SweepCampaign {
    /// Builds a fresh sweep over the configured DVFS points.
    pub fn new(
        domain_name: &str,
        isa: emvolt_isa::Isa,
        max_frequency_hz: f64,
        config: &FastSweepConfig,
    ) -> Self {
        let mut fp = Fingerprint::new()
            .str("sweep")
            .str(domain_name)
            .u64(run_config_fingerprint(&config.run))
            .u64(config.loaded_cores as u64)
            .u64(config.samples_per_point as u64)
            .f64(config.marker_halfwidth_hz)
            .u64(config.cpu_freqs_hz.len() as u64);
        for &f in &config.cpu_freqs_hz {
            fp = fp.f64(f);
        }
        SweepCampaign {
            domain_name: domain_name.to_owned(),
            kernel: sweep_kernel(isa),
            max_frequency_hz,
            tel: config.telemetry.clone(),
            config: config.clone(),
            next_point: 0,
            points: Vec::new(),
            clock: SimClock::new(),
            fingerprint: fp.finish(),
        }
    }

    /// Finishes a complete sweep: picks the resonance, emits the
    /// telemetry summaries, closes the backend and builds the result.
    ///
    /// # Errors
    ///
    /// [`DomainError::Backend`] if the backend fails to finish.
    pub fn into_result<B: MeasurementBackend + ?Sized>(
        self,
        backend: &mut B,
    ) -> Result<FastSweepResult, DomainError> {
        let resonance_hz = self
            .points
            .iter()
            .max_by(|a, b| a.amplitude_dbm.total_cmp(&b.amplitude_dbm))
            .map(|p| p.loop_freq_hz)
            .unwrap_or(0.0);
        self.tel.emit_counters();
        self.tel.emit_histograms();
        self.tel.flush();
        backend.finish().map_err(BackendError::into_domain_error)?;
        Ok(FastSweepResult {
            points: self.points,
            resonance_hz,
            campaign: self.clock,
        })
    }
}

impl Campaign for SweepCampaign {
    fn kind(&self) -> &'static str {
        "sweep"
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn telemetry(&self) -> Telemetry {
        self.tel.clone()
    }

    fn next_batch(&mut self) -> Option<StepBatch> {
        let f_cpu = *self.config.cpu_freqs_hz.get(self.next_point)?;
        Some(StepBatch::serial(vec![StepRequest {
            domain: self.domain_name.clone(),
            load: StepLoad::Kernel {
                kernel: self.kernel.clone(),
                loaded_cores: self.config.loaded_cores,
            },
            freq_hz: Some(f_cpu.min(self.max_frequency_hz)),
            band: BandSpec::AroundLoop {
                halfwidth_hz: self.config.marker_halfwidth_hz,
            },
            samples: self.config.samples_per_point,
            seed: None,
        }]))
    }

    fn absorb(&mut self, outcomes: &[StepOutcome]) -> Result<(), DomainError> {
        let f_cpu = self.config.cpu_freqs_hz[self.next_point];
        let obs = sole_observation(outcomes)?;
        self.clock
            .advance(self.config.samples_per_point as f64 * 0.6 + 2.0);
        self.tel.set_sim_time(self.clock.seconds());
        self.tel.span(
            "sweep",
            Layer::Core,
            &[
                ("cpu_mhz", f_cpu / 1e6),
                ("loop_mhz", obs.loop_frequency_hz / 1e6),
                ("amplitude_dbm", obs.reading.metric_dbm),
            ],
        );
        self.points.push(SweepPoint {
            cpu_freq_hz: f_cpu,
            loop_freq_hz: obs.loop_frequency_hz,
            amplitude_dbm: obs.reading.metric_dbm,
        });
        self.next_point += 1;
        Ok(())
    }

    fn snapshot(&self) -> Value {
        snap::obj(vec![
            ("next_point", Value::Num(self.next_point as f64)),
            (
                "points",
                Value::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Value::Arr(vec![
                                snap::hex(p.cpu_freq_hz),
                                snap::hex(p.loop_freq_hz),
                                snap::hex(p.amplitude_dbm),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("clock_s", snap::hex(self.clock.seconds())),
        ])
    }

    fn restore(&mut self, state: &Value) -> Result<(), DomainError> {
        self.next_point = snap::usize_field(state, "next_point").map_err(ck)?;
        self.points = snap::arr(snap::field(state, "points").map_err(ck)?)
            .map_err(ck)?
            .iter()
            .map(|p| {
                let p = snap::arr(p).map_err(ck)?;
                let [cpu, lp, amp] = p else {
                    return Err(ck("sweep point must be a [cpu, loop, amplitude] triple"));
                };
                Ok(SweepPoint {
                    cpu_freq_hz: snap::unhex(cpu).map_err(ck)?,
                    loop_freq_hz: snap::unhex(lp).map_err(ck)?,
                    amplitude_dbm: snap::unhex(amp).map_err(ck)?,
                })
            })
            .collect::<Result<_, DomainError>>()?;
        if self.next_point != self.points.len() {
            return Err(ck(format!(
                "sweep cursor {} disagrees with {} recorded points",
                self.next_point,
                self.points.len()
            )));
        }
        self.clock = SimClock::new();
        self.clock
            .advance(snap::unhex(snap::field(state, "clock_s").map_err(ck)?).map_err(ck)?);
        Ok(())
    }
}

/// [`fast_resonance_sweep_on`](crate::fast_resonance_sweep_on) with
/// checkpoint/resume/interrupt wiring. Returns `None` when the batch
/// limit interrupted the sweep.
///
/// # Errors
///
/// As for [`fast_resonance_sweep_on`](crate::fast_resonance_sweep_on),
/// plus [`DomainError::Checkpoint`] from resume verification or a failed
/// checkpoint write.
pub fn fast_resonance_sweep_resumable<B: MeasurementBackend + ?Sized>(
    backend: &mut B,
    domain_name: &str,
    config: &FastSweepConfig,
    opts: &DriveOptions,
) -> Result<Option<FastSweepResult>, DomainError> {
    backend
        .configure_run(&config.run)
        .map_err(BackendError::into_domain_error)?;
    let info = backend
        .domain_info(domain_name)
        .ok_or_else(|| DomainError::Backend(format!("unknown domain `{domain_name}`")))?;
    let mut campaign = SweepCampaign::new(domain_name, info.isa, info.max_frequency_hz, config);
    match drive(backend, &mut campaign, opts)? {
        DriveOutcome::Complete => campaign.into_result(backend).map(Some),
        DriveOutcome::Interrupted => Ok(None),
    }
}
