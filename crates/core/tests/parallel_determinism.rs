//! The tentpole guarantee of the batch measurement pipeline: a campaign
//! is bit-identical no matter how many worker threads evaluate it.
//!
//! Per-individual measurement seeds are derived from
//! `(campaign seed, generation, index)`, so neither thread scheduling nor
//! evaluation order can leak into fitness, history, or the evolved
//! winner.

use emvolt_core::{generate_em_virus, generate_voltage_virus, GenerationRecord, VirusGenConfig};
use emvolt_cpu::CoreModel;
use emvolt_ga::GaConfig;
use emvolt_inst::{Oscilloscope, ScopeConfig};
use emvolt_platform::{a72_pdn, EmBench, VoltageDomain};

fn reduced_config(threads: usize) -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 8,
            generations: 5,
            seed: 0xD1CE,
            ..GaConfig::default()
        },
        kernel_len: 16,
        samples_per_individual: 3,
        threads,
        ..VirusGenConfig::default()
    }
}

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

fn assert_histories_identical(a: &[GenerationRecord], b: &[GenerationRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: history length");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.index, rb.index, "{what}: generation index");
        assert_eq!(
            ra.best_fitness.to_bits(),
            rb.best_fitness.to_bits(),
            "{what}: best fitness, generation {}",
            ra.index
        );
        assert_eq!(
            ra.mean_fitness.to_bits(),
            rb.mean_fitness.to_bits(),
            "{what}: mean fitness, generation {}",
            ra.index
        );
        assert_eq!(
            ra.dominant_hz.to_bits(),
            rb.dominant_hz.to_bits(),
            "{what}: dominant frequency, generation {}",
            ra.index
        );
        assert_eq!(
            ra.droop_v, rb.droop_v,
            "{what}: droop, generation {}",
            ra.index
        );
    }
}

#[test]
fn em_campaign_is_bit_identical_across_thread_counts() {
    let domain = a72();
    let run = |threads: usize| {
        let mut bench = EmBench::new(21);
        generate_em_virus("det", &domain, &mut bench, &reduced_config(threads)).unwrap()
    };
    let serial = run(1);
    for threads in [2, 8] {
        let parallel = run(threads);
        assert_eq!(
            serial.kernel, parallel.kernel,
            "{threads} threads: winning kernel"
        );
        assert_eq!(
            serial.fitness.to_bits(),
            parallel.fitness.to_bits(),
            "{threads} threads: fitness"
        );
        assert_eq!(
            serial.dominant_hz.to_bits(),
            parallel.dominant_hz.to_bits(),
            "{threads} threads: dominant frequency"
        );
        assert_eq!(
            serial.generation_best, parallel.generation_best,
            "{threads} threads: generation bests"
        );
        assert_histories_identical(&serial.history, &parallel.history, "em");
        // Clock accounting must not depend on thread count either.
        assert_eq!(
            serial.campaign.seconds().to_bits(),
            parallel.campaign.seconds().to_bits(),
            "{threads} threads: campaign clock"
        );
    }
    // 8 individuals x 5 generations at 3 x 0.6 s + 2 s each.
    let expected = 8.0 * 5.0 * (3.0 * 0.6 + 2.0);
    assert!((serial.campaign.seconds() - expected).abs() < 1e-6);
}

/// The lane-major extension of the same guarantee: the evaluation lane
/// width — how many individuals ride one batched backend call — is a
/// pure performance knob. Batched readings are bit-identical to serial
/// ones and per-individual seeds don't depend on grouping, so every
/// `(threads, lanes)` combination evolves the same virus.
#[test]
fn em_campaign_is_bit_identical_across_lane_widths_and_threads() {
    let domain = a72();
    let run = |threads: usize, lanes: usize| {
        let mut bench = EmBench::new(21);
        let config = VirusGenConfig {
            lanes,
            ..reduced_config(threads)
        };
        generate_em_virus("det-l", &domain, &mut bench, &config).unwrap()
    };
    let reference = run(1, 1);
    for lanes in [1, 3, 8] {
        for threads in [1, 4] {
            let lane_run = run(threads, lanes);
            let what = format!("lanes {lanes} x threads {threads}");
            assert_eq!(reference.kernel, lane_run.kernel, "{what}: winning kernel");
            assert_eq!(
                reference.fitness.to_bits(),
                lane_run.fitness.to_bits(),
                "{what}: fitness"
            );
            assert_eq!(
                reference.generation_best, lane_run.generation_best,
                "{what}: generation bests"
            );
            assert_histories_identical(&reference.history, &lane_run.history, &what);
            assert_eq!(
                reference.campaign.seconds().to_bits(),
                lane_run.campaign.seconds().to_bits(),
                "{what}: campaign clock"
            );
        }
    }
}

/// The SIMD counterpart of the same guarantee: the runtime-dispatched
/// vector level (what `EMVOLT_SIMD` selects from the environment) is a
/// pure performance knob. Every level runs the identical fused `mul_add`
/// sequence per element, so forcing scalar, SSE2, or AVX2 — at any lane
/// width — must reproduce the campaign bit for bit, including the
/// emitted telemetry byte stream (the dispatched level is summary-only
/// and never enters trace events).
#[test]
fn em_campaign_is_bit_identical_across_simd_levels_and_lanes() {
    use emvolt_obs::{JsonlRecorder, Telemetry};
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let domain = a72();
    let run = |level: Option<emvolt_simd::SimdLevel>, lanes: usize| {
        emvolt_simd::force_level(level);
        let buf = Arc::new(Mutex::new(Vec::new()));
        let tel = Telemetry::new(Arc::new(JsonlRecorder::new(SharedBuf(buf.clone()))));
        let mut bench = EmBench::new(21);
        let config = VirusGenConfig {
            lanes,
            telemetry: tel.clone(),
            ..reduced_config(1)
        };
        let virus = generate_em_virus("det-s", &domain, &mut bench, &config).unwrap();
        tel.flush();
        emvolt_simd::force_level(None);
        let bytes = buf.lock().unwrap().clone();
        (virus, bytes)
    };

    // Campaign results must agree across every (level, lanes) pair; the
    // telemetry byte stream must agree across levels at a fixed lane
    // width (lane grouping is deterministic trace content — batch spans
    // record it — so traces are only comparable width against width).
    let (reference, _) = run(Some(emvolt_simd::SimdLevel::Scalar), 1);
    for lanes in [1, 3, 8] {
        let (_, scalar_bytes) = run(Some(emvolt_simd::SimdLevel::Scalar), lanes);
        assert!(!scalar_bytes.is_empty(), "trace should carry events");
        for &level in emvolt_simd::supported_levels() {
            let (virus, bytes) = run(Some(level), lanes);
            let what = format!("level {} x lanes {lanes}", level.as_str());
            assert_eq!(reference.kernel, virus.kernel, "{what}: winning kernel");
            assert_eq!(
                reference.fitness.to_bits(),
                virus.fitness.to_bits(),
                "{what}: fitness"
            );
            assert_eq!(
                reference.dominant_hz.to_bits(),
                virus.dominant_hz.to_bits(),
                "{what}: dominant frequency"
            );
            assert_eq!(
                reference.generation_best, virus.generation_best,
                "{what}: generation bests"
            );
            assert_histories_identical(&reference.history, &virus.history, &what);
            assert_eq!(scalar_bytes, bytes, "{what}: telemetry byte stream");
        }
    }
}

#[test]
fn voltage_campaign_is_bit_identical_across_thread_counts() {
    let domain = a72();
    let scope = Oscilloscope::new(ScopeConfig::oc_dso());
    let run = |threads: usize| {
        generate_voltage_virus("det-v", &domain, &scope, &reduced_config(threads), 13).unwrap()
    };
    let serial = run(1);
    for threads in [2, 8] {
        let parallel = run(threads);
        assert_eq!(serial.kernel, parallel.kernel);
        assert_eq!(serial.fitness.to_bits(), parallel.fitness.to_bits());
        assert_eq!(serial.generation_best, parallel.generation_best);
        assert_histories_identical(&serial.history, &parallel.history, "voltage");
    }
}

#[test]
fn fitness_cache_changes_seeds_but_not_determinism() {
    let domain = a72();
    let run = |threads: usize| {
        let mut bench = EmBench::new(21);
        let config = VirusGenConfig {
            cache_fitness: true,
            ..reduced_config(threads)
        };
        generate_em_virus("det-c", &domain, &mut bench, &config).unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.kernel, parallel.kernel);
    assert_eq!(serial.fitness.to_bits(), parallel.fitness.to_bits());
    assert_histories_identical(&serial.history, &parallel.history, "cached em");
    // Cached campaigns skip repeat measurements, so the accounted time
    // can only shrink relative to the measure-everything flow.
    let full = 8.0 * 5.0 * (3.0 * 0.6 + 2.0);
    assert!(serial.campaign.seconds() <= full + 1e-6);
}
