//! The tentpole guarantee of the batch measurement pipeline: a campaign
//! is bit-identical no matter how many worker threads evaluate it.
//!
//! Per-individual measurement seeds are derived from
//! `(campaign seed, generation, index)`, so neither thread scheduling nor
//! evaluation order can leak into fitness, history, or the evolved
//! winner.

use emvolt_core::{generate_em_virus, generate_voltage_virus, GenerationRecord, VirusGenConfig};
use emvolt_cpu::CoreModel;
use emvolt_ga::GaConfig;
use emvolt_inst::{Oscilloscope, ScopeConfig};
use emvolt_platform::{a72_pdn, EmBench, VoltageDomain};

fn reduced_config(threads: usize) -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 8,
            generations: 5,
            seed: 0xD1CE,
            ..GaConfig::default()
        },
        kernel_len: 16,
        samples_per_individual: 3,
        threads,
        ..VirusGenConfig::default()
    }
}

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

fn assert_histories_identical(a: &[GenerationRecord], b: &[GenerationRecord], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: history length");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.index, rb.index, "{what}: generation index");
        assert_eq!(
            ra.best_fitness.to_bits(),
            rb.best_fitness.to_bits(),
            "{what}: best fitness, generation {}",
            ra.index
        );
        assert_eq!(
            ra.mean_fitness.to_bits(),
            rb.mean_fitness.to_bits(),
            "{what}: mean fitness, generation {}",
            ra.index
        );
        assert_eq!(
            ra.dominant_hz.to_bits(),
            rb.dominant_hz.to_bits(),
            "{what}: dominant frequency, generation {}",
            ra.index
        );
        assert_eq!(
            ra.droop_v, rb.droop_v,
            "{what}: droop, generation {}",
            ra.index
        );
    }
}

#[test]
fn em_campaign_is_bit_identical_across_thread_counts() {
    let domain = a72();
    let run = |threads: usize| {
        let mut bench = EmBench::new(21);
        generate_em_virus("det", &domain, &mut bench, &reduced_config(threads)).unwrap()
    };
    let serial = run(1);
    for threads in [2, 8] {
        let parallel = run(threads);
        assert_eq!(
            serial.kernel, parallel.kernel,
            "{threads} threads: winning kernel"
        );
        assert_eq!(
            serial.fitness.to_bits(),
            parallel.fitness.to_bits(),
            "{threads} threads: fitness"
        );
        assert_eq!(
            serial.dominant_hz.to_bits(),
            parallel.dominant_hz.to_bits(),
            "{threads} threads: dominant frequency"
        );
        assert_eq!(
            serial.generation_best, parallel.generation_best,
            "{threads} threads: generation bests"
        );
        assert_histories_identical(&serial.history, &parallel.history, "em");
        // Clock accounting must not depend on thread count either.
        assert_eq!(
            serial.campaign.seconds().to_bits(),
            parallel.campaign.seconds().to_bits(),
            "{threads} threads: campaign clock"
        );
    }
    // 8 individuals x 5 generations at 3 x 0.6 s + 2 s each.
    let expected = 8.0 * 5.0 * (3.0 * 0.6 + 2.0);
    assert!((serial.campaign.seconds() - expected).abs() < 1e-6);
}

/// The lane-major extension of the same guarantee: the evaluation lane
/// width — how many individuals ride one batched backend call — is a
/// pure performance knob. Batched readings are bit-identical to serial
/// ones and per-individual seeds don't depend on grouping, so every
/// `(threads, lanes)` combination evolves the same virus.
#[test]
fn em_campaign_is_bit_identical_across_lane_widths_and_threads() {
    let domain = a72();
    let run = |threads: usize, lanes: usize| {
        let mut bench = EmBench::new(21);
        let config = VirusGenConfig {
            lanes,
            ..reduced_config(threads)
        };
        generate_em_virus("det-l", &domain, &mut bench, &config).unwrap()
    };
    let reference = run(1, 1);
    for lanes in [1, 3, 8] {
        for threads in [1, 4] {
            let lane_run = run(threads, lanes);
            let what = format!("lanes {lanes} x threads {threads}");
            assert_eq!(reference.kernel, lane_run.kernel, "{what}: winning kernel");
            assert_eq!(
                reference.fitness.to_bits(),
                lane_run.fitness.to_bits(),
                "{what}: fitness"
            );
            assert_eq!(
                reference.generation_best, lane_run.generation_best,
                "{what}: generation bests"
            );
            assert_histories_identical(&reference.history, &lane_run.history, &what);
            assert_eq!(
                reference.campaign.seconds().to_bits(),
                lane_run.campaign.seconds().to_bits(),
                "{what}: campaign clock"
            );
        }
    }
}

#[test]
fn voltage_campaign_is_bit_identical_across_thread_counts() {
    let domain = a72();
    let scope = Oscilloscope::new(ScopeConfig::oc_dso());
    let run = |threads: usize| {
        generate_voltage_virus("det-v", &domain, &scope, &reduced_config(threads), 13).unwrap()
    };
    let serial = run(1);
    for threads in [2, 8] {
        let parallel = run(threads);
        assert_eq!(serial.kernel, parallel.kernel);
        assert_eq!(serial.fitness.to_bits(), parallel.fitness.to_bits());
        assert_eq!(serial.generation_best, parallel.generation_best);
        assert_histories_identical(&serial.history, &parallel.history, "voltage");
    }
}

#[test]
fn fitness_cache_changes_seeds_but_not_determinism() {
    let domain = a72();
    let run = |threads: usize| {
        let mut bench = EmBench::new(21);
        let config = VirusGenConfig {
            cache_fitness: true,
            ..reduced_config(threads)
        };
        generate_em_virus("det-c", &domain, &mut bench, &config).unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.kernel, parallel.kernel);
    assert_eq!(serial.fitness.to_bits(), parallel.fitness.to_bits());
    assert_histories_identical(&serial.history, &parallel.history, "cached em");
    // Cached campaigns skip repeat measurements, so the accounted time
    // can only shrink relative to the measure-everything flow.
    let full = 8.0 * 5.0 * (3.0 * 0.6 + 2.0);
    assert!(serial.campaign.seconds() <= full + 1e-6);
}
