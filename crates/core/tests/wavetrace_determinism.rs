//! Wavetrace acceptance tests: a seeded virus campaign records a waveform
//! database covering the digital, analog and instrument layers, and the
//! resulting VCD is byte-identical at any worker-thread count and any
//! lane width.

use emvolt_core::{generate_em_virus, VirusGenConfig};
use emvolt_cpu::CoreModel;
use emvolt_ga::GaConfig;
use emvolt_obs::{validate_vcd_text, NoopRecorder, Telemetry, WaveDb};
use emvolt_platform::{a72_pdn, EmBench, VoltageDomain};
use std::sync::Arc;

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

/// Runs one seeded campaign with a wave sink attached and returns the
/// rendered VCD text.
fn traced_vcd(threads: usize, lanes: usize, stride: usize) -> String {
    let db = Arc::new(WaveDb::with_config(stride, Vec::new()));
    let tel = Telemetry::with_waves(Arc::new(NoopRecorder), db.clone());
    let cfg = VirusGenConfig {
        ga: GaConfig {
            population: 6,
            generations: 3,
            ..GaConfig::default()
        },
        kernel_len: 16,
        samples_per_individual: 3,
        threads,
        lanes,
        telemetry: tel,
        ..VirusGenConfig::default()
    };
    let domain = a72();
    let mut bench = EmBench::new(11);
    generate_em_virus("wave-test", &domain, &mut bench, &cfg).unwrap();
    db.to_vcd_string()
}

#[test]
fn campaign_vcd_covers_digital_analog_and_instrument_layers() {
    let vcd = traced_vcd(1, 0, 1);
    for signal in [
        " i_core $end",
        " issue_slots $end",
        " v_die $end",
        " i_pkg $end",
        " band_dbm $end",
    ] {
        assert!(vcd.contains(signal), "missing declaration for {signal:?}");
    }
    for scope in ["cpu", "pdn", "inst"] {
        assert!(
            vcd.contains(&format!("$scope module {scope} $end")),
            "missing scope {scope:?}"
        );
    }
    let check = validate_vcd_text(&vcd).expect("campaign VCD must validate");
    assert!(check.signals >= 5, "{} signals", check.signals);
    assert!(check.changes > 0);
}

#[test]
fn campaign_vcd_is_independent_of_thread_count_and_lane_width() {
    let reference = traced_vcd(1, 0, 1);
    assert!(!reference.is_empty());
    for (threads, lanes) in [(4, 0), (2, 3), (1, 8)] {
        let other = traced_vcd(threads, lanes, 1);
        assert_eq!(
            reference, other,
            "threads={threads} lanes={lanes}: VCD must be byte-identical"
        );
    }
}

#[test]
fn stride_decimation_thins_the_trace_without_breaking_validity() {
    let dense = traced_vcd(1, 0, 1);
    let thin = traced_vcd(1, 0, 8);
    let dense_check = validate_vcd_text(&dense).unwrap();
    let thin_check = validate_vcd_text(&thin).unwrap();
    assert_eq!(dense_check.signals, thin_check.signals);
    assert!(
        thin_check.changes * 4 < dense_check.changes,
        "stride 8 should drop most samples: {} vs {}",
        thin_check.changes,
        dense_check.changes
    );
}
