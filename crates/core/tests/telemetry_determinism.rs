//! Telemetry acceptance tests: a seeded campaign produces a parseable
//! JSONL trace with events from every instrumented layer, and two
//! identical campaigns produce byte-identical traces — at any thread
//! count.

use emvolt_core::{generate_em_virus, VirusGenConfig};
use emvolt_cpu::CoreModel;
use emvolt_ga::GaConfig;
use emvolt_obs::{Event, EventKind, JsonlRecorder, Layer, Telemetry};
use emvolt_platform::{a72_pdn, EmBench, VoltageDomain};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::sync::Arc;

#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

fn campaign_config(telemetry: Telemetry, threads: usize, lanes: usize) -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 6,
            generations: 4,
            ..GaConfig::default()
        },
        kernel_len: 16,
        samples_per_individual: 3,
        threads,
        lanes,
        cache_fitness: true,
        telemetry,
        ..VirusGenConfig::default()
    }
}

/// Runs one seeded campaign and returns the raw trace bytes.
fn traced_campaign(threads: usize) -> Vec<u8> {
    traced_campaign_with_lanes(threads, 0)
}

fn traced_campaign_with_lanes(threads: usize, lanes: usize) -> Vec<u8> {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let tel = Telemetry::new(Arc::new(JsonlRecorder::new(SharedBuf(buf.clone()))));
    let domain = a72();
    let mut bench = EmBench::new(11);
    generate_em_virus(
        "det-test",
        &domain,
        &mut bench,
        &campaign_config(tel, threads, lanes),
    )
    .unwrap();
    let bytes = buf.lock().clone();
    bytes
}

/// Drops the `batch_lanes` / `batch_lane_occupancy` counter events — the
/// only trace content that is *allowed* to vary with the lane width.
fn without_lane_counters(bytes: &[u8]) -> String {
    String::from_utf8(bytes.to_vec())
        .unwrap()
        .lines()
        .filter(|line| {
            !line.contains("\"batch_lanes\"") && !line.contains("\"batch_lane_occupancy\"")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn seeded_campaign_trace_covers_all_layers_and_kinds() {
    let bytes = traced_campaign(1);
    let text = String::from_utf8(bytes).unwrap();
    assert!(!text.is_empty(), "campaign emitted no telemetry");

    let events: Vec<Event> = text
        .lines()
        .map(|l| {
            let e: Event = serde_json::from_str(l)
                .unwrap_or_else(|err| panic!("unparseable line {l:?}: {err:?}"));
            e.validate()
                .unwrap_or_else(|err| panic!("invalid {l:?}: {err}"));
            e
        })
        .collect();

    for layer in [
        Layer::Circuit,
        Layer::Dsp,
        Layer::Platform,
        Layer::Core,
        Layer::Ga,
    ] {
        assert!(
            events.iter().any(|e| e.layer == layer),
            "no event from layer {layer}"
        );
    }
    for kind in EventKind::ALL {
        assert!(
            events.iter().any(|e| e.kind == kind),
            "no event of kind {kind:?}"
        );
    }
    // The DSP span is "goertzel": auto spectral selection takes the
    // band path for the campaign's 50-200 MHz measurement band (the
    // full-FFT path would emit "fft" instead).
    for span in [
        "transient_solve",
        "goertzel",
        "measure",
        "eval",
        "generation",
        "campaign",
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Span && e.name == span),
            "missing span {span:?}"
        );
    }
    // Deterministic traces carry no wall-clock stamps.
    assert!(events.iter().all(|e| e.wall_s.is_none()));
}

#[test]
fn identical_seeded_campaigns_trace_byte_identical() {
    let a = traced_campaign(1);
    let b = traced_campaign(1);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed campaigns must trace identically");
}

#[test]
fn trace_is_independent_of_thread_count() {
    let serial = traced_campaign(1);
    let threaded = traced_campaign(4);
    assert_eq!(
        serial, threaded,
        "thread count must not leak into the trace"
    );
}

/// The lane width may only surface in the two lane-bookkeeping counters.
/// After dropping those, traces are identical across lane widths; at a
/// fixed lane width they are byte-identical across thread counts with
/// the lane counters included.
#[test]
fn trace_is_independent_of_lane_width_modulo_lane_counters() {
    let reference = traced_campaign_with_lanes(1, 1);
    assert!(
        String::from_utf8(reference.clone())
            .unwrap()
            .contains("\"batch_lanes\""),
        "lane campaigns must emit the batch_lanes counter"
    );
    for lanes in [3, 8] {
        let trace = traced_campaign_with_lanes(1, lanes);
        assert_eq!(
            without_lane_counters(&trace),
            without_lane_counters(&reference),
            "lanes {lanes}: only lane counters may differ from lanes=1"
        );
        let threaded = traced_campaign_with_lanes(4, lanes);
        assert_eq!(
            trace, threaded,
            "lanes {lanes}: thread count must not leak into the trace"
        );
    }
}
