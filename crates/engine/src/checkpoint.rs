//! Checkpoint store: versioned JSONL snapshots of a campaign in flight.
//!
//! A checkpoint is four lines, written atomically (temp file + rename):
//!
//! 1. **header** — format version, campaign kind, run-config
//!    fingerprint, and how many batches the snapshot covers. Resume
//!    refuses a checkpoint whose kind or fingerprint does not match the
//!    campaign being resumed, so a snapshot taken against one
//!    chip/config can never silently seed a different run.
//! 2. **state** — the campaign's own snapshot tree ([`Campaign::snapshot`]).
//! 3. **rig** — opaque backend rig state (analyzer RNG, elapsed rig
//!    time, replay cursors) as string pairs.
//! 4. **telemetry** — every counter total, raw histogram value stream
//!    and the simulated clock, so a resumed run's summary and trace
//!    continue exactly where the interrupted run stopped.
//!
//! Every float crosses the file as the hex form of its IEEE-754 bits
//! ([`crate::snap`]), so `-0.0`, NaN payloads and values past 2^53
//! survive the round trip bit-for-bit.
//!
//! [`Campaign::snapshot`]: crate::Campaign::snapshot

use crate::snap::{self, arr, field, hex, hex_u64, obj, unhex, unhex_u64};
use emvolt_obs::{CounterId, HistId, Telemetry};
use serde::{DeError, Deserialize, Value};
use std::fs;
use std::io::Write;
use std::path::Path;

/// Bumped whenever the line layout changes; resume refuses other versions.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// Counter totals, histogram values and simulated time at snapshot time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Non-zero counter totals, in registry order.
    pub counters: Vec<(CounterId, u64)>,
    /// Non-empty histogram value streams, in recording order.
    pub hists: Vec<(HistId, Vec<f64>)>,
    /// Simulated campaign clock, seconds.
    pub sim_t: f64,
}

impl TelemetrySnapshot {
    /// Captures the current totals of `tel`.
    pub fn capture(tel: &Telemetry) -> Self {
        let counters = CounterId::ALL
            .into_iter()
            .filter_map(|id| {
                let n = tel.counter(id);
                (n > 0).then_some((id, n))
            })
            .collect();
        let hists = HistId::ALL
            .into_iter()
            .filter_map(|id| {
                let vs = tel.hist_values(id);
                (!vs.is_empty()).then_some((id, vs))
            })
            .collect();
        TelemetrySnapshot {
            counters,
            hists,
            sim_t: tel.sim_time(),
        }
    }

    /// Replays the snapshot into a fresh handle: counters re-counted,
    /// histogram values re-recorded in order, simulated clock restored.
    pub fn restore_into(&self, tel: &Telemetry) {
        for &(id, n) in &self.counters {
            tel.count(id, n);
        }
        for (id, vs) in &self.hists {
            for &v in vs {
                tel.record_value(*id, v);
            }
        }
        tel.set_sim_time(self.sim_t);
    }

    fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|&(id, n)| Value::Arr(vec![Value::Str(id.name().to_string()), hex_u64(n)]))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(id, vs)| {
                Value::Arr(vec![
                    Value::Str(id.name().to_string()),
                    Value::Arr(vs.iter().map(|&v| hex(v)).collect()),
                ])
            })
            .collect();
        obj(vec![
            ("k", Value::Str("telemetry".to_string())),
            ("counters", Value::Arr(counters)),
            ("hists", Value::Arr(hists)),
            ("sim_t", hex(self.sim_t)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, DeError> {
        let mut counters = Vec::new();
        for pair in arr(field(v, "counters")?)? {
            let (name, n) = name_value_pair(pair)?;
            let id = CounterId::ALL
                .into_iter()
                .find(|id| id.name() == name)
                .ok_or_else(|| DeError::new(format!("unknown counter `{name}`")))?;
            counters.push((id, unhex_u64(n)?));
        }
        let mut hists = Vec::new();
        for pair in arr(field(v, "hists")?)? {
            let (name, vs) = name_value_pair(pair)?;
            let id = HistId::ALL
                .into_iter()
                .find(|id| id.name() == name)
                .ok_or_else(|| DeError::new(format!("unknown histogram `{name}`")))?;
            let vs = arr(vs)?
                .iter()
                .map(unhex)
                .collect::<Result<Vec<f64>, DeError>>()?;
            hists.push((id, vs));
        }
        Ok(TelemetrySnapshot {
            counters,
            hists,
            sim_t: unhex(field(v, "sim_t")?)?,
        })
    }
}

fn name_value_pair(pair: &Value) -> Result<(String, &Value), DeError> {
    match pair {
        Value::Arr(items) if items.len() == 2 => Ok((String::from_value(&items[0])?, &items[1])),
        _ => Err(DeError::new("expected a [name, value] pair")),
    }
}

/// One full campaign snapshot, as stored on disk.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Campaign kind tag (`"virus"`, `"sweep"`, `"vmin"`, ...).
    pub campaign: String,
    /// Run-config fingerprint the campaign was started with.
    pub fingerprint: u64,
    /// Batches absorbed when the snapshot was taken.
    pub batches: u64,
    /// Campaign-specific state tree.
    pub state: Value,
    /// Opaque backend rig state pairs.
    pub rig: Vec<(String, String)>,
    /// Telemetry totals at snapshot time.
    pub telemetry: TelemetrySnapshot,
}

impl Checkpoint {
    /// Renders the four JSONL lines.
    pub fn to_lines(&self) -> String {
        let header = obj(vec![
            ("k", Value::Str("checkpoint".to_string())),
            ("version", Value::Num(f64::from(CHECKPOINT_FORMAT_VERSION))),
            ("campaign", Value::Str(self.campaign.clone())),
            ("fingerprint", hex_u64(self.fingerprint)),
            ("batches", hex_u64(self.batches)),
        ]);
        // The state tree dominates the snapshot and this runs on every
        // debounced write, so render it in place instead of cloning it
        // into a wrapper object. Byte-identical to rendering
        // `obj([("k", ...), ("data", state)])`.
        let mut state = String::from("{\"k\":\"state\",\"data\":");
        state.push_str(&serde_json::value_to_string(&self.state));
        state.push('}');
        let rig = obj(vec![
            ("k", Value::Str("rig".to_string())),
            (
                "pairs",
                Value::Arr(
                    self.rig
                        .iter()
                        .map(|(k, v)| {
                            Value::Arr(vec![Value::Str(k.clone()), Value::Str(v.clone())])
                        })
                        .collect(),
                ),
            ),
        ]);
        format!(
            "{}\n{state}\n{}\n{}\n",
            snap::to_line(&header),
            snap::to_line(&rig),
            snap::to_line(&self.telemetry.to_value()),
        )
    }

    /// Parses the four lines written by [`Checkpoint::to_lines`].
    ///
    /// # Errors
    ///
    /// A message naming the offending line on malformed input or a
    /// format-version mismatch.
    pub fn from_lines(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let mut next = |what: &str| {
            let line = lines.next().ok_or_else(|| format!("missing {what} line"))?;
            let v = snap::parse_line(line).map_err(|e| format!("{what} line: {e}"))?;
            let kind = String::from_value(
                v.field_value("k")
                    .map_err(|e| format!("{what} line: {e}"))?,
            )
            .map_err(|e| format!("{what} line: {e}"))?;
            if kind != what {
                return Err(format!("expected {what} line, found `{kind}`"));
            }
            Ok(v)
        };

        let header = next("checkpoint")?;
        let version = f64::from_value(field(&header, "version").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        if version != f64::from(CHECKPOINT_FORMAT_VERSION) {
            return Err(format!(
                "checkpoint format version {version} is not the supported version \
                 {CHECKPOINT_FORMAT_VERSION}"
            ));
        }
        let campaign = String::from_value(field(&header, "campaign").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let fingerprint = unhex_u64(field(&header, "fingerprint").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        let batches = unhex_u64(field(&header, "batches").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;

        let state = field(&next("state")?, "data")
            .map_err(|e| e.to_string())?
            .clone();

        let rig_v = next("rig")?;
        let mut rig = Vec::new();
        for pair in
            arr(field(&rig_v, "pairs").map_err(|e| e.to_string())?).map_err(|e| e.to_string())?
        {
            let (k, v) = name_value_pair(pair).map_err(|e| e.to_string())?;
            rig.push((k, String::from_value(v).map_err(|e| e.to_string())?));
        }

        let telemetry =
            TelemetrySnapshot::from_value(&next("telemetry")?).map_err(|e| e.to_string())?;
        if lines.next().is_some() {
            return Err("trailing content after telemetry line".to_string());
        }
        Ok(Checkpoint {
            campaign,
            fingerprint,
            batches,
            state,
            rig,
            telemetry,
        })
    }

    /// Writes the snapshot atomically: a sibling temp file is renamed
    /// over `path`, so a killed process mid-write never corrupts the
    /// previous good checkpoint.
    ///
    /// Deliberately no `fsync`: the rename is already atomic against
    /// process death (the kill-and-resume threat model), and a per-batch
    /// sync would tax every checkpointed campaign by milliseconds per
    /// batch — the overhead budget is 3% of the uncheckpointed run. The
    /// cost is that a power loss or kernel crash in the write-back
    /// window can lose the newest snapshot; the cadence means at most a
    /// few batches of work, and the previous renamed snapshot (if
    /// flushed) still resumes.
    ///
    /// # Errors
    ///
    /// A message naming the failing I/O step.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let mut file =
            fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
        file.write_all(self.to_lines().as_bytes())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        drop(file);
        fs::rename(&tmp, path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    }

    /// Reads a snapshot written by [`Checkpoint::write`].
    ///
    /// # Errors
    ///
    /// A message naming the I/O or parse failure.
    pub fn read(path: &Path) -> Result<Self, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_lines(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            campaign: "virus".to_string(),
            fingerprint: 0xDEAD_BEEF_0BAD_CAFE,
            batches: 7,
            state: obj(vec![
                ("generation", Value::Num(3.0)),
                ("best", hex(-0.0)),
                ("rng", Value::Arr(vec![hex_u64(u64::MAX), hex_u64(1)])),
            ]),
            rig: vec![
                ("rig_rng".to_string(), "0:1:2:3".to_string()),
                ("elapsed".to_string(), "4045000000000000".to_string()),
            ],
            telemetry: TelemetrySnapshot {
                counters: vec![(CounterId::Measurements, 42), (CounterId::Generations, 3)],
                hists: vec![(HistId::FitnessBest, vec![-120.5, f64::NAN, 0.25])],
                sim_t: 1234.5,
            },
        }
    }

    #[test]
    fn lines_round_trip() {
        let cp = sample();
        let back = Checkpoint::from_lines(&cp.to_lines()).unwrap();
        assert_eq!(back.campaign, cp.campaign);
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!(back.batches, cp.batches);
        assert_eq!(snap::to_line(&back.state), snap::to_line(&cp.state));
        assert_eq!(back.rig, cp.rig);
        assert_eq!(back.telemetry.counters, cp.telemetry.counters);
        assert_eq!(back.telemetry.sim_t.to_bits(), cp.telemetry.sim_t.to_bits());
        let (id, vs) = &back.telemetry.hists[0];
        assert_eq!(*id, HistId::FitnessBest);
        assert_eq!(vs[1].to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn version_mismatch_refused() {
        let cp = sample();
        let lines = cp.to_lines().replace("\"version\":1", "\"version\":999");
        let err = Checkpoint::from_lines(&lines).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn truncated_file_refused() {
        let cp = sample();
        let full = cp.to_lines();
        let text = full.lines().take(3).collect::<Vec<_>>().join("\n");
        let err = Checkpoint::from_lines(&text).unwrap_err();
        assert!(err.contains("telemetry"), "{err}");
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;
        use rand::{Rng, SeedableRng};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Any f64 bit pattern in the state tree or telemetry stream
            // — -0.0, NaN payloads, subnormals, integers past 2^53 —
            // and any u64 counter total survives the four-line cycle
            // exactly. NaN breaks value equality, so the invariant is
            // byte equality of the re-rendered lines.
            #[test]
            fn checkpoint_round_trips_any_bit_patterns(
                fingerprint in any::<u64>(),
                batches in any::<u64>(),
                state_bits in proptest::collection::vec(any::<u64>(), 1..6),
                counter_total in any::<u64>(),
                hist_bits in proptest::collection::vec(any::<u64>(), 0..5),
                sim_t_bits in any::<u64>(),
            ) {
                let cp = Checkpoint {
                    campaign: "virus".to_string(),
                    fingerprint,
                    batches,
                    state: obj(vec![(
                        "xs",
                        Value::Arr(
                            state_bits.iter().map(|&b| hex(f64::from_bits(b))).collect(),
                        ),
                    )]),
                    rig: vec![("rig_rng".to_string(), "a:b".to_string())],
                    telemetry: TelemetrySnapshot {
                        counters: vec![(CounterId::Measurements, counter_total)],
                        hists: vec![(
                            HistId::FitnessBest,
                            hist_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                        )],
                        sim_t: f64::from_bits(sim_t_bits),
                    },
                };
                let lines = cp.to_lines();
                let back = Checkpoint::from_lines(&lines).unwrap();
                prop_assert_eq!(back.to_lines(), lines);
                prop_assert_eq!(back.fingerprint, fingerprint);
                prop_assert_eq!(back.batches, batches);
                prop_assert_eq!(
                    back.telemetry.sim_t.to_bits(),
                    cp.telemetry.sim_t.to_bits()
                );
            }

            // A mid-stream RNG serialized through the hex-u64 discipline
            // resumes the exact draw sequence: split one generator's
            // stream at an arbitrary point, round-trip its state words
            // through checkpoint lines, and the restored generator must
            // produce the continuation the original would have.
            #[test]
            fn mid_stream_rng_state_round_trips(
                seed in any::<u64>(),
                drawn in 0usize..200,
            ) {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                for _ in 0..drawn {
                    let _: u64 = rng.gen();
                }
                let words = rng.state();
                let cp = Checkpoint {
                    campaign: "vmin".to_string(),
                    fingerprint: 1,
                    batches: drawn as u64,
                    state: obj(vec![(
                        "rng",
                        Value::Arr(words.iter().map(|&w| hex_u64(w)).collect()),
                    )]),
                    rig: Vec::new(),
                    telemetry: TelemetrySnapshot::default(),
                };
                let back = Checkpoint::from_lines(&cp.to_lines()).unwrap();
                let restored_words: Vec<u64> = arr(field(&back.state, "rng").unwrap())
                    .unwrap()
                    .iter()
                    .map(|v| unhex_u64(v).unwrap())
                    .collect();
                prop_assert_eq!(restored_words.as_slice(), words.as_slice());
                let mut restored = rand::rngs::StdRng::from_state([
                    restored_words[0],
                    restored_words[1],
                    restored_words[2],
                    restored_words[3],
                ]);
                for _ in 0..16 {
                    let a: u64 = rng.gen();
                    let b: u64 = restored.gen();
                    prop_assert_eq!(a, b);
                }
            }
        }
    }
}
