//! Resumable step-engine for measurement campaigns.
//!
//! Every campaign — GA virus search, resonance sweep, characterization,
//! Vmin ladder — is a state machine that repeatedly proposes a batch of
//! measurement requests and absorbs the outcomes. This crate makes that
//! loop explicit:
//!
//! * [`Campaign`] — the state-machine trait: propose the next
//!   [`StepBatch`], absorb its [`StepOutcome`]s, and snapshot/restore
//!   the in-flight state as a value tree.
//! * [`StepDriver`] — executes batches against any
//!   [`MeasurementBackend`], reusing the exact lane-grouped worker-pool
//!   dispatch of the legacy hot path (`--threads`/`--lanes` semantics
//!   preserved bit-for-bit), and checkpoints campaign + rig + telemetry
//!   state to a versioned JSONL file every N batches.
//! * [`checkpoint`] — the on-disk snapshot format (floats as hex bit
//!   patterns, run-config fingerprint guard against resuming on a
//!   different chip/config).
//!
//! The driver never emits telemetry events of its own from worker
//! threads: lane batches run against a quiet clone of the campaign's
//! handle, exactly as the legacy `run_batch_lanes` path did, so a
//! campaign driven through the engine produces byte-identical traces.

pub mod checkpoint;
pub mod snap;

pub use checkpoint::{Checkpoint, TelemetrySnapshot, CHECKPOINT_FORMAT_VERSION};
pub use emvolt_backend::{kernel_fingerprint, run_config_fingerprint};

use emvolt_backend::{
    BackendError, BandSpec, EmObservation, Load, MeasureRequest, MeasurementBackend,
};
use emvolt_isa::Kernel;
use emvolt_obs::{CounterId, Telemetry};
use emvolt_platform::DomainError;
use serde::Value;
use std::path::{Path, PathBuf};

/// Owned analogue of [`Load`]: what runs on the domain during a step.
#[derive(Debug, Clone)]
pub enum StepLoad {
    /// A kernel looping on `loaded_cores` cores.
    Kernel {
        /// The loop body under test.
        kernel: Kernel,
        /// Cores executing it.
        loaded_cores: usize,
    },
    /// Idle domain (noise-floor measurement).
    Idle,
}

/// Owned analogue of [`MeasureRequest`], so a campaign can propose
/// batches without borrowing from its own mutable state.
#[derive(Debug, Clone)]
pub struct StepRequest {
    /// Domain name.
    pub domain: String,
    /// Load during the measurement.
    pub load: StepLoad,
    /// Clock override, Hz (`None` = domain default).
    pub freq_hz: Option<f64>,
    /// Analyzer band.
    pub band: BandSpec,
    /// Analyzer samples.
    pub samples: usize,
    /// `Some` = reproducible seeded path; `None` = stateful rig RNG.
    pub seed: Option<u64>,
}

impl StepRequest {
    /// Borrows as the backend request type.
    pub fn as_measure(&self) -> MeasureRequest<'_> {
        MeasureRequest {
            domain: &self.domain,
            load: match &self.load {
                StepLoad::Kernel {
                    kernel,
                    loaded_cores,
                } => Load::Kernel {
                    kernel,
                    loaded_cores: *loaded_cores,
                },
                StepLoad::Idle => Load::Idle,
            },
            freq_hz: self.freq_hz,
            band: self.band,
            samples: self.samples,
            seed: self.seed,
        }
    }
}

/// What one request produced.
#[derive(Debug, Clone)]
pub enum StepOutcome {
    /// A successful measurement.
    Observation(EmObservation),
    /// A failure served from the fitness cache (already scored once).
    CachedFailure(String),
    /// Any other backend failure, rendered.
    Failed(String),
}

/// How a batch's requests are dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Lane-grouped parallel dispatch over the worker pool (the
    /// seeded GA evaluation path). Requests are chunked into lane
    /// groups; each group is one `measure_batch` call on a quiet
    /// telemetry clone.
    Lanes,
    /// In-order serial dispatch on the coordinator thread with the
    /// campaign's full telemetry handle (the stateful rig path).
    Serial,
}

/// One unit of driver work: requests plus their dispatch mode.
///
/// An empty request list is a *compute-only* step — the campaign
/// advances purely in [`Campaign::absorb`] (the Vmin ladder runs its
/// domain directly and uses these to make every rung checkpointable).
#[derive(Debug, Clone)]
pub struct StepBatch {
    /// Dispatch mode.
    pub mode: BatchMode,
    /// Requests, in lane order.
    pub requests: Vec<StepRequest>,
}

impl StepBatch {
    /// A lane-dispatched batch.
    pub fn lanes(requests: Vec<StepRequest>) -> Self {
        StepBatch {
            mode: BatchMode::Lanes,
            requests,
        }
    }

    /// A serial batch.
    pub fn serial(requests: Vec<StepRequest>) -> Self {
        StepBatch {
            mode: BatchMode::Serial,
            requests,
        }
    }

    /// A compute-only batch (state advances in `absorb` alone).
    pub fn compute() -> Self {
        StepBatch {
            mode: BatchMode::Serial,
            requests: Vec::new(),
        }
    }
}

/// A campaign decomposed into checkpointable steps.
///
/// # Contract
///
/// * [`next_batch`](Campaign::next_batch) must be a pure function of
///   the current state: it computes the upcoming batch without
///   consuming anything, so the driver may call it and then decide to
///   checkpoint-and-stop instead of executing. State advances only in
///   [`absorb`](Campaign::absorb).
/// * `absorb` receives outcomes in request order and is called from
///   the single-threaded coordinator, so it may emit telemetry events
///   freely — this is where generation barriers, spans and histograms
///   are charged, exactly as the legacy serial sections did.
/// * [`snapshot`](Campaign::snapshot) / [`restore`](Campaign::restore)
///   round-trip every bit of in-flight state (RNG streams included):
///   a restored campaign must produce the same remaining batches, and
///   absorb them to the same result, as the original would have.
pub trait Campaign {
    /// Stable kind tag stored in checkpoint headers (`"virus"`, ...).
    fn kind(&self) -> &'static str;

    /// Fingerprint of everything the checkpoint does **not** store but
    /// correctness depends on: run config, platform, campaign
    /// parameters. Resume refuses a mismatch.
    fn fingerprint(&self) -> u64;

    /// The campaign's telemetry handle (cloned for quiet workers).
    fn telemetry(&self) -> Telemetry;

    /// The next batch, or `None` when the campaign is complete.
    fn next_batch(&mut self) -> Option<StepBatch>;

    /// Absorbs outcomes of the batch just executed (request order).
    ///
    /// # Errors
    ///
    /// [`DomainError`] when an outcome is fatal to the campaign.
    fn absorb(&mut self, outcomes: &[StepOutcome]) -> Result<(), DomainError>;

    /// Serializes all in-flight state.
    fn snapshot(&self) -> Value;

    /// Captures all in-flight state as a deferred render: the returned
    /// closure must build the same tree [`snapshot`](Campaign::snapshot)
    /// would have built at the moment of the call, but runs only when a
    /// debounced checkpoint write actually happens — most cadence
    /// points stash the closure and are superseded before rendering.
    /// The default simply renders eagerly; campaigns with
    /// allocation-heavy snapshots (kernel populations) override it to
    /// clone cheap typed state instead, keeping the batch loop's
    /// checkpoint cost to a few memcpys.
    fn snapshot_deferred(&self) -> Box<dyn FnOnce() -> Value + Send> {
        let tree = self.snapshot();
        Box::new(move || tree)
    }

    /// Restores state written by [`snapshot`](Campaign::snapshot).
    ///
    /// # Errors
    ///
    /// [`DomainError::Checkpoint`] on a malformed or incompatible tree.
    fn restore(&mut self, state: &Value) -> Result<(), DomainError>;

    /// Called once when the campaign starts fresh (not on resume) —
    /// the place to charge start-of-run counters that a resumed run
    /// restores from its checkpoint instead (e.g. the SIMD dispatch
    /// level).
    fn on_fresh_start(&mut self) {}
}

/// How a drive ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveOutcome {
    /// The campaign ran out of batches; results are final.
    Complete,
    /// The batch limit was reached; state was checkpointed (when a
    /// checkpoint path is configured) and the campaign can resume.
    Interrupted,
}

/// Executes a [`Campaign`] against a [`MeasurementBackend`].
pub struct StepDriver<'a, B: MeasurementBackend + ?Sized> {
    backend: &'a mut B,
    threads: usize,
    lanes: usize,
    checkpoint_path: Option<PathBuf>,
    checkpoint_every: u64,
    max_batches: Option<u64>,
    batches_done: u64,
}

impl<'a, B: MeasurementBackend + ?Sized> StepDriver<'a, B> {
    /// A serial driver (one thread, one lane, no checkpointing).
    pub fn new(backend: &'a mut B) -> Self {
        StepDriver {
            backend,
            threads: 1,
            lanes: 1,
            checkpoint_path: None,
            checkpoint_every: 1,
            max_batches: None,
            batches_done: 0,
        }
    }

    /// Worker threads for lane batches (`<= 1` = serial dispatch).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Requests per lane group (clamped to at least 1).
    #[must_use]
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Checkpoints to `path` after every `every` absorbed batches (and
    /// always when interrupted by the batch limit).
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.checkpoint_path = Some(path.into());
        self.checkpoint_every = every.max(1);
        self
    }

    /// Stops (with a checkpoint) once `max` batches have been absorbed
    /// and more work remains.
    #[must_use]
    pub fn max_batches(mut self, max: u64) -> Self {
        self.max_batches = Some(max);
        self
    }

    /// Batches absorbed so far (includes batches restored by resume).
    pub fn batches_done(&self) -> u64 {
        self.batches_done
    }

    /// Loads `path` and restores `campaign`, the backend rig and the
    /// telemetry totals to the snapshot, after verifying the header:
    /// campaign kind and run-config fingerprint must match, so a
    /// checkpoint taken against a different chip/config is refused.
    ///
    /// Returns the number of batches the snapshot covers.
    ///
    /// # Errors
    ///
    /// [`DomainError::Checkpoint`] on I/O or parse failure, a header
    /// mismatch, or incompatible campaign/rig state.
    pub fn resume<C: Campaign + ?Sized>(
        &mut self,
        campaign: &mut C,
        path: &Path,
    ) -> Result<u64, DomainError> {
        let cp = Checkpoint::read(path).map_err(DomainError::Checkpoint)?;
        if cp.campaign != campaign.kind() {
            return Err(DomainError::Checkpoint(format!(
                "{} holds a `{}` campaign, not `{}`",
                path.display(),
                cp.campaign,
                campaign.kind()
            )));
        }
        if cp.fingerprint != campaign.fingerprint() {
            return Err(DomainError::Checkpoint(format!(
                "{} was taken with config fingerprint {:016x}, but this run has {:016x}; \
                 refusing to resume against a different chip/config",
                path.display(),
                cp.fingerprint,
                campaign.fingerprint()
            )));
        }
        campaign.restore(&cp.state)?;
        self.backend
            .restore_rig_state(&cp.rig)
            .map_err(|e| DomainError::Checkpoint(e.to_string()))?;
        let tel = campaign.telemetry();
        cp.telemetry.restore_into(&tel);
        tel.count(CounterId::StepsResumed, cp.batches);
        self.batches_done = cp.batches;
        Ok(cp.batches)
    }

    /// Runs the campaign to completion or to the batch limit.
    ///
    /// Checkpoint writes are debounced: each cadence point stashes a
    /// cheap typed snapshot ([`Campaign::snapshot_deferred`]) and the
    /// newest one is rendered and atomically written at most once per
    /// window, so `--checkpoint PATH:1` on a fast campaign does not pay
    /// a disk write per batch. A run that stops at the batch limit
    /// always flushes the interrupt snapshot before returning; a
    /// campaign that runs to completion instead discards the stashed
    /// snapshot — a finished campaign has nothing left to resume, so
    /// the success path never pays the final render and write.
    ///
    /// # Errors
    ///
    /// [`DomainError`] from a fatal absorb or a failed checkpoint write.
    pub fn run<C: Campaign + ?Sized>(
        &mut self,
        campaign: &mut C,
    ) -> Result<DriveOutcome, DomainError> {
        let mut writer = self.checkpoint_path.clone().map(CheckpointWriter::new);
        match self.run_loop(campaign, &mut writer) {
            Ok(DriveOutcome::Complete) => Ok(DriveOutcome::Complete),
            Ok(DriveOutcome::Interrupted) => {
                writer.map_or(Ok(()), CheckpointWriter::finish)?;
                Ok(DriveOutcome::Interrupted)
            }
            Err(e) => {
                // Best effort: the newest pre-error snapshot still
                // resumes, and the absorb error outranks a failed flush.
                if let Some(w) = writer {
                    let _ = w.finish();
                }
                Err(e)
            }
        }
    }

    fn run_loop<C: Campaign + ?Sized>(
        &mut self,
        campaign: &mut C,
        writer: &mut Option<CheckpointWriter>,
    ) -> Result<DriveOutcome, DomainError> {
        while let Some(batch) = campaign.next_batch() {
            if self
                .max_batches
                .is_some_and(|limit| self.batches_done >= limit)
            {
                self.enqueue_checkpoint(campaign, writer)?;
                return Ok(DriveOutcome::Interrupted);
            }
            let outcomes = self.execute(campaign, &batch);
            campaign.absorb(&outcomes)?;
            self.batches_done += 1;
            if writer.is_some() && self.batches_done.is_multiple_of(self.checkpoint_every) {
                self.enqueue_checkpoint(campaign, writer)?;
            }
        }
        Ok(DriveOutcome::Complete)
    }

    fn execute<C: Campaign + ?Sized>(
        &mut self,
        campaign: &C,
        batch: &StepBatch,
    ) -> Vec<StepOutcome> {
        match batch.mode {
            BatchMode::Lanes => self.execute_lanes(campaign, &batch.requests),
            BatchMode::Serial => self.execute_serial(campaign, &batch.requests),
        }
    }

    /// Lane-grouped dispatch, bit-identical to the legacy
    /// `run_batch_lanes` hot path: requests are chunked into lane
    /// groups, groups fan out over the scoped worker pool, and every
    /// group is a single `measure_batch` call against a quiet
    /// telemetry clone (workers never emit events).
    fn execute_lanes<C: Campaign + ?Sized>(
        &mut self,
        campaign: &C,
        requests: &[StepRequest],
    ) -> Vec<StepOutcome> {
        let quiet = campaign.telemetry().quiet();
        let groups: Vec<&[StepRequest]> = requests.chunks(self.lanes.max(1)).collect();
        let backend: &B = &*self.backend;
        let eval_group = |chunk: &&[StepRequest]| -> Vec<StepOutcome> {
            let reqs: Vec<MeasureRequest<'_>> = chunk.iter().map(StepRequest::as_measure).collect();
            backend
                .measure_batch(&reqs, &quiet)
                .into_iter()
                .map(outcome_of)
                .collect()
        };
        let grouped: Vec<Vec<StepOutcome>> = if self.threads <= 1 {
            groups.iter().map(eval_group).collect()
        } else {
            emvolt_ga::map_parallel(&groups, eval_group, self.threads)
        };
        grouped.into_iter().flatten().collect()
    }

    fn execute_serial<C: Campaign + ?Sized>(
        &mut self,
        campaign: &C,
        requests: &[StepRequest],
    ) -> Vec<StepOutcome> {
        let tel = campaign.telemetry();
        requests
            .iter()
            .map(|req| outcome_of(self.backend.measure_serial(&req.as_measure(), &tel)))
            .collect()
    }

    fn enqueue_checkpoint<C: Campaign + ?Sized>(
        &mut self,
        campaign: &C,
        writer: &mut Option<CheckpointWriter>,
    ) -> Result<(), DomainError> {
        let Some(writer) = writer.as_mut() else {
            return Ok(());
        };
        let tel = campaign.telemetry();
        tel.count(CounterId::CheckpointWrites, 1);
        let pending = PendingCheckpoint {
            campaign: campaign.kind().to_string(),
            fingerprint: campaign.fingerprint(),
            batches: self.batches_done,
            state: campaign.snapshot_deferred(),
            rig: self.backend.rig_state(),
            telemetry: TelemetrySnapshot::capture(&tel),
        };
        writer.send(pending)
    }
}

/// A checkpoint captured at a batch boundary but not yet rendered:
/// everything is owned data except `state`, whose `Value` tree is built
/// via [`Campaign::snapshot_deferred`] only if this snapshot survives
/// the debounce window.
struct PendingCheckpoint {
    campaign: String,
    fingerprint: u64,
    batches: u64,
    state: Box<dyn FnOnce() -> Value + Send>,
    rig: Vec<(String, String)>,
    telemetry: TelemetrySnapshot,
}

impl PendingCheckpoint {
    fn render(self) -> Checkpoint {
        Checkpoint {
            campaign: self.campaign,
            fingerprint: self.fingerprint,
            batches: self.batches,
            state: (self.state)(),
            rig: self.rig,
            telemetry: self.telemetry,
        }
    }
}

/// Debounced checkpoint sink: each cadence point hands over a cheap
/// typed snapshot ([`Campaign::snapshot_deferred`]), a newer snapshot
/// supersedes an unwritten older one (the rename would have clobbered
/// it anyway), and JSON rendering plus the atomic write run at most
/// once per [`CHECKPOINT_WRITE_DEBOUNCE`]. A campaign whose batches
/// outlast the window still hits disk at every cadence point; a fast
/// campaign pays for a single write. [`CheckpointWriter::finish`]
/// always flushes the newest held snapshot, so the file a finished or
/// interrupted run leaves behind is exactly the last snapshot taken.
struct CheckpointWriter {
    path: PathBuf,
    held: Option<PendingCheckpoint>,
    last_write: std::time::Instant,
}

/// Minimum gap between cadence-driven disk writes. A kill loses at most
/// this much wall clock on top of the batch in flight — noise next to
/// the minutes a characterization campaign runs — while campaigns whose
/// batches outlast the window still hit disk at every cadence point.
const CHECKPOINT_WRITE_DEBOUNCE: std::time::Duration = std::time::Duration::from_millis(250);

impl CheckpointWriter {
    fn new(path: PathBuf) -> Self {
        CheckpointWriter {
            path,
            held: None,
            // The window opens here, so a campaign that finishes inside
            // it pays for exactly one disk write — the one in `finish`.
            last_write: std::time::Instant::now(),
        }
    }

    /// Takes one snapshot, writing through when the window has lapsed.
    fn send(&mut self, pending: PendingCheckpoint) -> Result<(), DomainError> {
        self.held = Some(pending);
        if self.last_write.elapsed() >= CHECKPOINT_WRITE_DEBOUNCE {
            self.flush()?;
        }
        Ok(())
    }

    /// Renders and atomically writes the held snapshot, if any.
    fn flush(&mut self) -> Result<(), DomainError> {
        if let Some(pending) = self.held.take() {
            pending
                .render()
                .write(&self.path)
                .map_err(DomainError::Checkpoint)?;
            self.last_write = std::time::Instant::now();
        }
        Ok(())
    }

    /// Writes the newest snapshot regardless of the debounce window —
    /// callers must invoke this before relying on the file.
    fn finish(mut self) -> Result<(), DomainError> {
        self.flush()
    }
}

/// Everything a CLI passes down to drive a campaign: worker-pool shape
/// plus checkpoint/resume/interrupt wiring. One struct so every campaign
/// entry point (`sweep`, `virus`, `vmin`) exposes the same knobs.
#[derive(Debug, Clone, Default)]
pub struct DriveOptions {
    /// Worker threads for lane batches (`<= 1` = serial dispatch; the
    /// caller resolves `0 = auto` before building this).
    pub threads: usize,
    /// Lane width for batched dispatch (resolved by the caller).
    pub lanes: usize,
    /// Checkpoint file; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in batches (clamped to at least 1).
    pub checkpoint_every: u64,
    /// Resume from this checkpoint before running.
    pub resume: Option<PathBuf>,
    /// Stop (with a checkpoint) after this many absorbed batches.
    pub max_batches: Option<u64>,
}

impl DriveOptions {
    /// Serial, non-checkpointed options with the given pool shape —
    /// what the legacy entry points use.
    pub fn pool(threads: usize, lanes: usize) -> Self {
        DriveOptions {
            threads,
            lanes,
            ..DriveOptions::default()
        }
    }
}

/// Drives `campaign` against `backend` under `opts`: resumes from the
/// checkpoint when one is named (after fingerprint verification),
/// otherwise calls [`Campaign::on_fresh_start`], then runs to
/// completion or the batch limit.
///
/// # Errors
///
/// [`DomainError`] from resume verification, a fatal absorb, or a
/// failed checkpoint write.
pub fn drive<B, C>(
    backend: &mut B,
    campaign: &mut C,
    opts: &DriveOptions,
) -> Result<DriveOutcome, DomainError>
where
    B: MeasurementBackend + ?Sized,
    C: Campaign + ?Sized,
{
    let mut driver = StepDriver::new(backend)
        .threads(opts.threads)
        .lanes(opts.lanes);
    if let Some(path) = &opts.checkpoint {
        driver = driver.checkpoint(path, opts.checkpoint_every);
    }
    if let Some(max) = opts.max_batches {
        driver = driver.max_batches(max);
    }
    match &opts.resume {
        Some(path) => {
            driver.resume(campaign, path)?;
        }
        None => campaign.on_fresh_start(),
    }
    driver.run(campaign)
}

/// A backend that cannot measure: for compute-only campaigns (the Vmin
/// ladder) whose batches never carry requests but still want the
/// engine's checkpoint/resume/interrupt machinery.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullBackend;

impl MeasurementBackend for NullBackend {
    fn label(&self) -> &'static str {
        "null"
    }

    fn domains(&self) -> Vec<emvolt_backend::DomainInfo> {
        Vec::new()
    }

    fn configure_run(&mut self, _config: &emvolt_platform::RunConfig) -> Result<(), BackendError> {
        Ok(())
    }

    fn measure(
        &self,
        _req: &MeasureRequest<'_>,
        _telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        Err(BackendError::Store(
            "null backend cannot measure".to_string(),
        ))
    }

    fn measure_serial(
        &mut self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        self.measure(req, telemetry)
    }

    fn capture_combined(
        &mut self,
        _sources: &[emvolt_backend::CombinedSource<'_>],
        _seed: u64,
        _telemetry: &Telemetry,
    ) -> Result<emvolt_inst::SweepReading, BackendError> {
        Err(BackendError::Store(
            "null backend cannot capture".to_string(),
        ))
    }

    fn elapsed_seconds(&self) -> f64 {
        0.0
    }

    fn costs(&self) -> emvolt_platform::SessionCosts {
        emvolt_platform::SessionCosts::default()
    }
}

fn outcome_of(result: Result<EmObservation, BackendError>) -> StepOutcome {
    match result {
        Ok(obs) => StepOutcome::Observation(obs),
        Err(BackendError::CachedFailure(msg)) => StepOutcome::CachedFailure(msg),
        Err(e) => StepOutcome::Failed(e.to_string()),
    }
}

/// FNV-1a accumulator for campaign fingerprints: fold in the run
/// config, platform identity and campaign parameters so a checkpoint
/// can refuse to resume against anything else.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts at the FNV offset basis.
    pub fn new() -> Self {
        Fingerprint(Self::OFFSET)
    }

    /// Folds raw bytes.
    #[must_use]
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a string (length-prefixed so fields cannot run together).
    #[must_use]
    pub fn str(self, s: &str) -> Self {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// Folds a `u64`.
    #[must_use]
    pub fn u64(self, n: u64) -> Self {
        self.bytes(&n.to_le_bytes())
    }

    /// Folds an `f64` by bit pattern.
    #[must_use]
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// The accumulated fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_field_order() {
        let a = Fingerprint::new().str("ab").str("c").finish();
        let b = Fingerprint::new().str("a").str("bc").finish();
        assert_ne!(a, b);
        let again = Fingerprint::new().str("ab").str("c").finish();
        assert_eq!(a, again);
    }

    #[test]
    fn step_batch_helpers_set_modes() {
        assert_eq!(StepBatch::compute().mode, BatchMode::Serial);
        assert!(StepBatch::compute().requests.is_empty());
        assert_eq!(StepBatch::lanes(Vec::new()).mode, BatchMode::Lanes);
        assert_eq!(StepBatch::serial(Vec::new()).mode, BatchMode::Serial);
    }
}
