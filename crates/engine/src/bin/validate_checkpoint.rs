//! Validates a campaign checkpoint file structurally, in the
//! `validate_telemetry` / `validate_vcd` style.
//!
//! Usage: `validate_checkpoint <state.jsonl> [more checkpoints...]`
//!
//! Re-parses the four snapshot lines (header, state, rig, telemetry),
//! checks the format version, and round-trips the file through the
//! writer — a valid checkpoint re-renders to the exact bytes on disk,
//! so any lossy field (a float that did not cross as its bit pattern, a
//! counter past 2^53) fails loudly. Prints a summary per file; exits
//! non-zero on the first malformed one so CI can gate on it.

use std::process::ExitCode;

use emvolt_engine::Checkpoint;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_checkpoint <state.jsonl> [more checkpoints...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match validate_file(path) {
            Ok(report) => println!("{path}: {report}"),
            Err(err) => {
                eprintln!("{path}: INVALID: {err}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let cp = Checkpoint::from_lines(&text)?;
    if cp.campaign.is_empty() {
        return Err("header names no campaign kind".to_string());
    }
    let rendered = cp.to_lines();
    if rendered != text {
        return Err(
            "file does not round-trip through the checkpoint writer (lossy or re-ordered fields)"
                .to_string(),
        );
    }
    Ok(format!(
        "`{}` campaign, fingerprint {:016x}, {} batches, {} rig pairs, \
         {} counters, {} histograms ok",
        cp.campaign,
        cp.fingerprint,
        cp.batches,
        cp.rig.len(),
        cp.telemetry.counters.len(),
        cp.telemetry.hists.len(),
    ))
}
