//! Value helpers for campaign snapshots.
//!
//! Checkpoint snapshots round-trip floats bit-exactly by encoding every
//! `f64` as the 16-hex-digit form of its IEEE-754 bits — the same idiom
//! the backend trace store uses. `u64` values (RNG words, counters,
//! generation indices past 2^53) get the same treatment so nothing is
//! squeezed through a lossy `f64` on the way to JSON.

use serde::{DeError, Deserialize, Value};

/// Encodes an `f64` as its bit pattern in hex (bit-exact, NaN-safe).
pub fn hex(v: f64) -> Value {
    Value::Str(format!("{:016x}", v.to_bits()))
}

/// Decodes an `f64` written by [`hex`].
///
/// # Errors
///
/// [`DeError`] when the value is not a 16-digit hex bit string.
pub fn unhex(v: &Value) -> Result<f64, DeError> {
    Ok(f64::from_bits(unhex_u64(v)?))
}

/// Encodes a `u64` as hex (exact past 2^53, unlike `Value::Num`).
pub fn hex_u64(n: u64) -> Value {
    Value::Str(format!("{n:016x}"))
}

/// Decodes a `u64` written by [`hex_u64`].
///
/// # Errors
///
/// [`DeError`] when the value is not a hex string.
pub fn unhex_u64(v: &Value) -> Result<u64, DeError> {
    let s = String::from_value(v)?;
    u64::from_str_radix(&s, 16).map_err(|e| DeError::new(format!("bad bit string `{s}`: {e}")))
}

/// Builds an object value from borrowed field names.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Looks up a required object field.
///
/// # Errors
///
/// [`DeError`] when `v` is not an object or lacks `key`.
pub fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, DeError> {
    v.field_value(key)
}

/// Views a value as an array.
///
/// # Errors
///
/// [`DeError`] when `v` is not an array.
pub fn arr(v: &Value) -> Result<&[Value], DeError> {
    match v {
        Value::Arr(items) => Ok(items),
        other => Err(DeError::new(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}

/// Reads a required `usize` field (small integers only; exact in `f64`).
///
/// # Errors
///
/// [`DeError`] when the field is absent or not a non-negative integer.
pub fn usize_field(v: &Value, key: &str) -> Result<usize, DeError> {
    let n = f64::from_value(field(v, key)?)?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(DeError::new(format!("field `{key}`: `{n}` is not a size")));
    }
    Ok(n as usize)
}

/// Serializes a raw [`Value`] tree to one JSON line.
pub fn to_line(v: &Value) -> String {
    serde_json::value_to_string(v)
}

/// Parses one JSON line into a raw [`Value`] tree.
///
/// # Errors
///
/// [`DeError`] on malformed JSON.
pub fn parse_line(line: &str) -> Result<Value, DeError> {
    struct Passthrough(Value);
    impl Deserialize for Passthrough {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(Passthrough(v.clone()))
        }
    }
    serde_json::from_str::<Passthrough>(line)
        .map(|p| p.0)
        .map_err(|e| DeError::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_awkward_floats() {
        for v in [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            9_007_199_254_740_993.0_f64, // 2^53 + 1 rounded; still bit-exact
            -1.5e-300,
        ] {
            let back = unhex(&hex(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn u64_round_trips_past_2_53() {
        for n in [0u64, 1, u64::MAX, (1 << 53) + 1, 0xE110_CAFE] {
            assert_eq!(unhex_u64(&hex_u64(n)).unwrap(), n);
        }
    }

    #[test]
    fn line_round_trips_nested_values() {
        let v = obj(vec![
            ("a", hex(-0.0)),
            ("b", Value::Arr(vec![Value::Num(1.0), Value::Null])),
        ]);
        let back = parse_line(&to_line(&v)).unwrap();
        assert_eq!(to_line(&back), to_line(&v));
    }

    #[test]
    fn usize_field_rejects_fractions() {
        let v = obj(vec![("n", Value::Num(1.5))]);
        assert!(usize_field(&v, "n").is_err());
        let v = obj(vec![("n", Value::Num(7.0))]);
        assert_eq!(usize_field(&v, "n").unwrap(), 7);
    }
}
