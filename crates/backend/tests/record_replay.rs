//! Record/replay equivalence, driven through the real campaigns in
//! `emvolt-core` (a dev-only dependency cycle): the GA virus search and
//! the fast resonance sweep must produce bit-identical results and
//! byte-identical telemetry traces whichever backend serves the
//! measurements — live, recording, or replay — across seeds and worker
//! thread counts. Replay does all of this without ever invoking the
//! transient solver.

use emvolt_backend::{LiveBackend, MeasurementBackend, RecordBackend, ReplayBackend};
use emvolt_core::{
    fast_resonance_sweep_on, generate_em_virus_on, FastSweepConfig, FastSweepResult, Virus,
    VirusGenConfig,
};
use emvolt_cpu::CoreModel;
use emvolt_ga::GaConfig;
use emvolt_obs::{JsonlRecorder, Telemetry};
use emvolt_platform::{a72_pdn, EmBench, RunConfig, VoltageDomain};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn a72() -> VoltageDomain {
    VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
}

fn live(seed: u64) -> LiveBackend {
    LiveBackend::single(a72(), EmBench::new(seed ^ 0xBEEF), RunConfig::fast())
}

/// In-memory telemetry sink so whole traces compare byte-for-byte.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn telemetry() -> (Telemetry, SharedBuf) {
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let tel = Telemetry::new(Arc::new(JsonlRecorder::new(buf.clone())));
    (tel, buf)
}

fn ga_config(seed: u64, threads: usize, telemetry: Telemetry) -> VirusGenConfig {
    VirusGenConfig {
        ga: GaConfig {
            population: 6,
            generations: 3,
            seed,
            ..GaConfig::default()
        },
        kernel_len: 12,
        samples_per_individual: 2,
        threads,
        telemetry,
        ..VirusGenConfig::default()
    }
}

/// Every observable output of a campaign, at `to_bits` precision.
fn virus_fingerprint(v: &Virus) -> String {
    let mut s = format!(
        "{}|{:016x}|{:016x}|{:016x}\n{}\n",
        v.name,
        v.fitness.to_bits(),
        v.dominant_hz.to_bits(),
        v.campaign.seconds().to_bits(),
        v.kernel.render(),
    );
    for rec in &v.history {
        let _ = writeln!(
            s,
            "g{} {:016x} {:016x} {:016x}",
            rec.index,
            rec.best_fitness.to_bits(),
            rec.mean_fitness.to_bits(),
            rec.dominant_hz.to_bits(),
        );
    }
    for k in &v.generation_best {
        let _ = writeln!(s, "{}", k.render());
    }
    s
}

fn sweep_fingerprint(r: &FastSweepResult) -> String {
    let mut s = format!(
        "{:016x}|{:016x}\n",
        r.resonance_hz.to_bits(),
        r.campaign.seconds().to_bits()
    );
    for p in &r.points {
        let _ = writeln!(
            s,
            "{:016x} {:016x} {:016x}",
            p.cpu_freq_hz.to_bits(),
            p.loop_freq_hz.to_bits(),
            p.amplitude_dbm.to_bits(),
        );
    }
    s
}

/// Runs one GA campaign over `backend`, returning the result fingerprint
/// and the full telemetry trace bytes.
fn run_ga<B: MeasurementBackend + ?Sized>(
    backend: &mut B,
    seed: u64,
    threads: usize,
) -> (String, Vec<u8>) {
    let (tel, buf) = telemetry();
    let cfg = ga_config(seed, threads, tel);
    let virus = generate_em_virus_on("rr", backend, "A72", &cfg, |_| {}).expect("campaign runs");
    let bytes = buf.0.lock().unwrap().clone();
    (virus_fingerprint(&virus), bytes)
}

fn trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("emvolt-rr-{tag}-{}.jsonl", std::process::id()))
}

#[test]
fn ga_replay_is_bit_identical_to_live_across_seeds_and_threads() {
    for seed in [11u64, 0xA72E3] {
        let trace = trace_path(&format!("ga-{seed}"));

        let mut live1 = live(seed);
        let (fp_live, tel_live) = run_ga(&mut live1, seed, 1);

        // Same campaign, four worker threads: thread count must not leak
        // into results or traces.
        let mut live4 = live(seed);
        let (fp_live4, tel_live4) = run_ga(&mut live4, seed, 4);
        assert_eq!(
            fp_live, fp_live4,
            "seed {seed}: thread count changed the live campaign"
        );
        assert_eq!(
            tel_live, tel_live4,
            "seed {seed}: thread count changed the live trace"
        );

        // Recording wraps live without disturbing it.
        let mut rec = RecordBackend::create(live(seed), &trace).expect("trace file opens");
        let (fp_rec, tel_rec) = run_ga(&mut rec, seed, 1);
        assert_eq!(
            fp_live, fp_rec,
            "seed {seed}: recording changed the campaign"
        );
        assert_eq!(
            tel_live, tel_rec,
            "seed {seed}: recording changed the trace"
        );

        // Replay serves the identical campaign from the trace alone — no
        // domain, no bench, no solver — at either thread count.
        for threads in [1usize, 4] {
            let mut rep = ReplayBackend::open(&trace).expect("trace loads");
            let (fp_rep, tel_rep) = run_ga(&mut rep, seed, threads);
            assert_eq!(
                fp_live, fp_rep,
                "seed {seed}, {threads} thread(s): replay diverged from live"
            );
            assert_eq!(
                tel_live, tel_rep,
                "seed {seed}, {threads} thread(s): replay trace diverged from live"
            );
        }

        let _ = std::fs::remove_file(&trace);
    }
}

#[test]
fn fast_sweep_replay_is_bit_identical_to_live() {
    let trace = trace_path("sweep");
    let sweep_cfg = |tel: Telemetry| FastSweepConfig {
        cpu_freqs_hz: vec![1.2e9, 1.0e9, 800e6, 600e6, 400e6],
        samples_per_point: 2,
        telemetry: tel,
        ..FastSweepConfig::for_max_frequency(1.2e9)
    };

    let (tel, buf) = telemetry();
    let mut live_backend = live(9);
    let live_result = fast_resonance_sweep_on(&mut live_backend, "A72", &sweep_cfg(tel)).unwrap();
    let tel_live = buf.0.lock().unwrap().clone();

    let (tel, buf) = telemetry();
    let mut rec = RecordBackend::create(live(9), &trace).expect("trace file opens");
    let rec_result = fast_resonance_sweep_on(&mut rec, "A72", &sweep_cfg(tel)).unwrap();
    let tel_rec = buf.0.lock().unwrap().clone();
    assert_eq!(
        sweep_fingerprint(&live_result),
        sweep_fingerprint(&rec_result)
    );
    assert_eq!(tel_live, tel_rec, "recording changed the sweep trace");

    let (tel, buf) = telemetry();
    let mut rep = ReplayBackend::open(&trace).expect("trace loads");
    let rep_result = fast_resonance_sweep_on(&mut rep, "A72", &sweep_cfg(tel)).unwrap();
    let tel_rep = buf.0.lock().unwrap().clone();
    assert_eq!(
        sweep_fingerprint(&live_result),
        sweep_fingerprint(&rep_result),
        "replay diverged from the live sweep"
    );
    assert_eq!(tel_live, tel_rep, "replay sweep trace diverged from live");

    let _ = std::fs::remove_file(&trace);
}

#[test]
fn replaying_a_different_campaign_fails_with_missing_recording() {
    let trace = trace_path("mismatch");
    let mut rec = RecordBackend::create(live(3), &trace).expect("trace file opens");
    let _ = run_ga(&mut rec, 3, 1);

    // A different GA seed evolves different kernels; their keys are not
    // in the trace, so the campaign must fail loudly rather than serve
    // wrong data.
    let mut rep = ReplayBackend::open(&trace).expect("trace loads");
    let (tel, _buf) = telemetry();
    let cfg = ga_config(4, 1, tel);
    let err = generate_em_virus_on("rr", &mut rep, "A72", &cfg, |_| {})
        .expect_err("mismatched replay must fail");
    assert!(
        err.to_string().contains("no recorded measurement"),
        "unexpected error: {err}"
    );

    let _ = std::fs::remove_file(&trace);
}
