//! The JSONL trace format behind [`RecordBackend`] / [`ReplayBackend`].
//!
//! A trace is one header line followed by one line per backend call:
//!
//! ```json
//! {"k":"header","version":1,"backend":"live","costs":{...},"domains":[...]}
//! {"k":"entry","key":"A72|k9c5a…x1|default|b…:…|n3|s00…2a|c41…","ok":true,"obs":{...},...}
//! ```
//!
//! Entries are looked up by [`request_key`] — a pipe-delimited string of
//! every input that determines the observation: domain name, kernel
//! fingerprint and core count, frequency override, band, sample count,
//! seed, and the run-config fingerprint. Serial calls with no seed key as
//! `rig` and are replayed *in recording order* per key, which reproduces
//! the stateful analyzer-RNG sequence.
//!
//! ## Bit-exact floats
//!
//! The vendored JSON number path cannot round-trip every `f64` (`-0.0`
//! and integers above 2^53 lose their bit pattern), and replay promises
//! `to_bits()`-level equality with the recorded run. All floats in the
//! trace are therefore stored as 16-hex-digit `f64::to_bits` strings;
//! only human-auxiliary numbers (sample counts, counter deltas) use JSON
//! numbers.

use crate::fingerprint::{kernel_fingerprint, Fnv};
use crate::request::{BandSpec, CombinedSource, DomainInfo, EmObservation, Load, MeasureRequest};
use emvolt_isa::Isa;
use emvolt_obs::{CounterId, Event, HistId};
use emvolt_platform::{EmReading, SessionCosts};
use serde::{DeError, Deserialize, Serialize, Value};

/// Version stamp written to (and required in) the trace header.
pub const TRACE_FORMAT_VERSION: u64 = 1;

/// Lookup key for one `measure`/`measure_serial` call.
///
/// `cfg_fp` is [`run_config_fingerprint`](crate::run_config_fingerprint)
/// of the campaign's pinned [`RunConfig`](emvolt_platform::RunConfig).
pub fn request_key(req: &MeasureRequest<'_>, cfg_fp: u64) -> String {
    let load = match req.load {
        Load::Kernel {
            kernel,
            loaded_cores,
        } => format!("k{:016x}x{loaded_cores}", kernel_fingerprint(kernel)),
        Load::Idle => "idle".to_string(),
    };
    let freq = match req.freq_hz {
        Some(hz) => format!("{:016x}", hz.to_bits()),
        None => "default".to_string(),
    };
    let band = match req.band {
        BandSpec::Explicit { lo_hz, hi_hz } => {
            format!("b{:016x}:{:016x}", lo_hz.to_bits(), hi_hz.to_bits())
        }
        BandSpec::AroundLoop { halfwidth_hz } => format!("l{:016x}", halfwidth_hz.to_bits()),
    };
    let seed = match req.seed {
        Some(s) => format!("s{s:016x}"),
        None => "rig".to_string(),
    };
    format!(
        "{}|{load}|{freq}|{band}|n{}|{seed}|c{cfg_fp:016x}",
        req.domain, req.samples
    )
}

/// Lookup key for one `capture_combined` call.
pub fn combined_key(sources: &[CombinedSource<'_>], seed: u64, cfg_fp: u64) -> String {
    let mut h = Fnv::new();
    for src in sources {
        h.write(src.domain.as_bytes());
        h.write(b"|");
        match src.kernel {
            Some(k) => {
                h.write_u64(kernel_fingerprint(k));
                h.write_u64(src.loaded_cores as u64);
            }
            None => h.write(b"idle"),
        }
        h.write(b";");
    }
    format!("combined|{:016x}|s{seed:016x}|c{cfg_fp:016x}", h.finish())
}

/// Wraps a hand-built [`Value`] so the vendored `serde_json::to_string`
/// (which takes `T: Serialize`) can print it.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn hex(v: f64) -> Value {
    Value::Str(format!("{:016x}", v.to_bits()))
}

fn unhex(v: &Value) -> Result<f64, DeError> {
    let s = String::from_value(v)?;
    let bits = u64::from_str_radix(&s, 16)
        .map_err(|e| DeError::new(format!("bad f64 bit string `{s}`: {e}")))?;
    Ok(f64::from_bits(bits))
}

fn isa_str(isa: Isa) -> &'static str {
    match isa {
        Isa::ArmV8 => "armv8",
        Isa::X86_64 => "x86_64",
    }
}

fn isa_parse(s: &str) -> Result<Isa, DeError> {
    match s {
        "armv8" => Ok(Isa::ArmV8),
        "x86_64" => Ok(Isa::X86_64),
        other => Err(DeError::new(format!("unknown isa `{other}`"))),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn domain_info_value(d: &DomainInfo) -> Value {
    obj(vec![
        ("name", Value::Str(d.name.clone())),
        ("isa", Value::Str(isa_str(d.isa).to_string())),
        ("max_freq", hex(d.max_frequency_hz)),
        ("freq", hex(d.frequency_hz)),
        ("voltage", hex(d.voltage_v)),
        ("active_cores", Value::Num(d.active_cores as f64)),
        ("resonance", hex(d.expected_resonance_hz)),
    ])
}

fn domain_info_from(v: &Value) -> Result<DomainInfo, DeError> {
    Ok(DomainInfo {
        name: String::from_value(v.field_value("name")?)?,
        isa: isa_parse(&String::from_value(v.field_value("isa")?)?)?,
        max_frequency_hz: unhex(v.field_value("max_freq")?)?,
        frequency_hz: unhex(v.field_value("freq")?)?,
        voltage_v: unhex(v.field_value("voltage")?)?,
        active_cores: usize::from_value(v.field_value("active_cores")?)?,
        expected_resonance_hz: unhex(v.field_value("resonance")?)?,
    })
}

/// The trace's first line: who recorded, with what cost model, over
/// which domains.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TraceHeader {
    pub(crate) backend: String,
    pub(crate) costs: SessionCosts,
    pub(crate) domains: Vec<DomainInfo>,
}

impl TraceHeader {
    pub(crate) fn to_line(&self) -> String {
        let c = &self.costs;
        let v = obj(vec![
            ("k", Value::Str("header".to_string())),
            ("version", Value::Num(TRACE_FORMAT_VERSION as f64)),
            ("backend", Value::Str(self.backend.clone())),
            (
                "costs",
                obj(vec![
                    ("upload", hex(c.upload_s)),
                    ("compile", hex(c.compile_s)),
                    ("launch", hex(c.launch_s)),
                    ("sample", hex(c.sample_s)),
                    ("teardown", hex(c.teardown_s)),
                ]),
            ),
            (
                "domains",
                Value::Arr(self.domains.iter().map(domain_info_value).collect()),
            ),
        ]);
        serde_json::to_string(&Raw(v)).expect("vendored JSON serialization is infallible")
    }

    pub(crate) fn from_value(v: &Value) -> Result<Self, DeError> {
        let version = u64::from_value(v.field_value("version")?)?;
        if version != TRACE_FORMAT_VERSION {
            return Err(DeError::new(format!(
                "trace format version {version}, this build reads {TRACE_FORMAT_VERSION}"
            )));
        }
        let cv = v.field_value("costs")?;
        let costs = SessionCosts {
            upload_s: unhex(cv.field_value("upload")?)?,
            compile_s: unhex(cv.field_value("compile")?)?,
            launch_s: unhex(cv.field_value("launch")?)?,
            sample_s: unhex(cv.field_value("sample")?)?,
            teardown_s: unhex(cv.field_value("teardown")?)?,
        };
        let domains = match v.field_value("domains")? {
            Value::Arr(items) => items
                .iter()
                .map(domain_info_from)
                .collect::<Result<Vec<_>, _>>()?,
            other => {
                return Err(DeError::new(format!(
                    "expected array for `domains`, found {}",
                    other.kind()
                )))
            }
        };
        Ok(TraceHeader {
            backend: String::from_value(v.field_value("backend")?)?,
            costs,
            domains,
        })
    }
}

/// The payload a recorded call produced.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TracePayload {
    /// A successful band measurement.
    Observation(EmObservation),
    /// A successful combined capture (sweep points).
    Points(Vec<(f64, f64)>),
    /// The call failed; the recorded error message.
    Failed(String),
}

/// One recorded backend call.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TraceEntry {
    pub(crate) key: String,
    pub(crate) payload: TracePayload,
    /// Counter deltas this call charged, in `CounterId::ALL` order.
    pub(crate) counters: Vec<(CounterId, u64)>,
    /// Histogram values this call recorded, in `HistId::ALL` order.
    pub(crate) hists: Vec<(HistId, Vec<f64>)>,
    /// Telemetry events this call emitted, in emission order.
    pub(crate) events: Vec<Event>,
    /// Analyzer occupancy this call added, seconds.
    pub(crate) elapsed_s: f64,
}

fn observation_value(o: &EmObservation) -> Value {
    obj(vec![
        ("metric", hex(o.reading.metric_dbm)),
        ("dominant", hex(o.reading.dominant_hz)),
        ("loop", hex(o.loop_frequency_hz)),
        ("ipc", hex(o.ipc)),
        ("droop", hex(o.max_droop_v)),
        ("p2p", hex(o.peak_to_peak_v)),
        ("band_lo", hex(o.band.0)),
        ("band_hi", hex(o.band.1)),
        ("cached", Value::Bool(o.cached)),
    ])
}

fn observation_from(v: &Value) -> Result<EmObservation, DeError> {
    Ok(EmObservation {
        reading: EmReading {
            metric_dbm: unhex(v.field_value("metric")?)?,
            dominant_hz: unhex(v.field_value("dominant")?)?,
        },
        loop_frequency_hz: unhex(v.field_value("loop")?)?,
        ipc: unhex(v.field_value("ipc")?)?,
        max_droop_v: unhex(v.field_value("droop")?)?,
        peak_to_peak_v: unhex(v.field_value("p2p")?)?,
        band: (
            unhex(v.field_value("band_lo")?)?,
            unhex(v.field_value("band_hi")?)?,
        ),
        cached: bool::from_value(v.field_value("cached")?)?,
    })
}

impl TraceEntry {
    pub(crate) fn to_line(&self) -> String {
        let mut fields = vec![
            ("k", Value::Str("entry".to_string())),
            ("key", Value::Str(self.key.clone())),
        ];
        match &self.payload {
            TracePayload::Observation(o) => {
                fields.push(("ok", Value::Bool(true)));
                fields.push(("obs", observation_value(o)));
            }
            TracePayload::Points(points) => {
                fields.push(("ok", Value::Bool(true)));
                fields.push((
                    "points",
                    Value::Arr(
                        points
                            .iter()
                            .map(|&(f, a)| Value::Arr(vec![hex(f), hex(a)]))
                            .collect(),
                    ),
                ));
            }
            TracePayload::Failed(err) => {
                fields.push(("ok", Value::Bool(false)));
                fields.push(("err", Value::Str(err.clone())));
            }
        }
        fields.push((
            "counters",
            Value::Obj(
                self.counters
                    .iter()
                    .map(|&(id, n)| (id.name().to_string(), Value::Num(n as f64)))
                    .collect(),
            ),
        ));
        fields.push((
            "hists",
            Value::Obj(
                self.hists
                    .iter()
                    .map(|(id, vs)| {
                        (
                            id.name().to_string(),
                            Value::Arr(vs.iter().map(|&v| hex(v)).collect()),
                        )
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "events",
            Value::Arr(self.events.iter().map(Serialize::to_value).collect()),
        ));
        fields.push(("elapsed", hex(self.elapsed_s)));
        serde_json::to_string(&Raw(obj(fields))).expect("vendored JSON serialization is infallible")
    }

    pub(crate) fn from_value(v: &Value) -> Result<Self, DeError> {
        let key = String::from_value(v.field_value("key")?)?;
        let ok = bool::from_value(v.field_value("ok")?)?;
        let payload = if !ok {
            TracePayload::Failed(String::from_value(v.field_value("err")?)?)
        } else if let Ok(points) = v.field_value("points") {
            match points {
                Value::Arr(items) => TracePayload::Points(
                    items
                        .iter()
                        .map(|item| match item {
                            Value::Arr(pair) if pair.len() == 2 => {
                                Ok((unhex(&pair[0])?, unhex(&pair[1])?))
                            }
                            other => Err(DeError::new(format!(
                                "expected [freq, amp] pair, found {}",
                                other.kind()
                            ))),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                ),
                other => {
                    return Err(DeError::new(format!(
                        "expected array for `points`, found {}",
                        other.kind()
                    )))
                }
            }
        } else {
            TracePayload::Observation(observation_from(v.field_value("obs")?)?)
        };
        let counters = match v.field_value("counters")? {
            Value::Obj(entries) => entries
                .iter()
                .map(|(name, nv)| {
                    let id = CounterId::ALL
                        .into_iter()
                        .find(|id| id.name() == name)
                        .ok_or_else(|| DeError::new(format!("unknown counter `{name}`")))?;
                    Ok((id, u64::from_value(nv)?))
                })
                .collect::<Result<Vec<_>, DeError>>()?,
            other => {
                return Err(DeError::new(format!(
                    "expected object for `counters`, found {}",
                    other.kind()
                )))
            }
        };
        let hists = match v.field_value("hists")? {
            Value::Obj(entries) => entries
                .iter()
                .map(|(name, hv)| {
                    let id = HistId::ALL
                        .into_iter()
                        .find(|id| id.name() == name)
                        .ok_or_else(|| DeError::new(format!("unknown histogram `{name}`")))?;
                    let values = match hv {
                        Value::Arr(items) => {
                            items.iter().map(unhex).collect::<Result<Vec<_>, _>>()?
                        }
                        other => {
                            return Err(DeError::new(format!(
                                "expected array for histogram `{name}`, found {}",
                                other.kind()
                            )))
                        }
                    };
                    Ok((id, values))
                })
                .collect::<Result<Vec<_>, DeError>>()?,
            other => {
                return Err(DeError::new(format!(
                    "expected object for `hists`, found {}",
                    other.kind()
                )))
            }
        };
        let events = match v.field_value("events")? {
            Value::Arr(items) => items
                .iter()
                .map(Event::from_value)
                .collect::<Result<Vec<_>, _>>()?,
            other => {
                return Err(DeError::new(format!(
                    "expected array for `events`, found {}",
                    other.kind()
                )))
            }
        };
        Ok(TraceEntry {
            key,
            payload,
            counters,
            hists,
            events,
            elapsed_s: unhex(v.field_value("elapsed")?)?,
        })
    }
}

/// One parsed trace line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TraceLine {
    Header(TraceHeader),
    Entry(TraceEntry),
}

impl TraceLine {
    pub(crate) fn parse(line: &str) -> Result<Self, String> {
        let v: Value = parse_value(line)?;
        let kind = String::from_value(v.field_value("k").map_err(|e| e.to_string())?)
            .map_err(|e| e.to_string())?;
        match kind.as_str() {
            "header" => Ok(TraceLine::Header(
                TraceHeader::from_value(&v).map_err(|e| e.to_string())?,
            )),
            "entry" => Ok(TraceLine::Entry(
                TraceEntry::from_value(&v).map_err(|e| e.to_string())?,
            )),
            other => Err(format!("unknown trace line kind `{other}`")),
        }
    }
}

/// Parses one JSON line into a raw value tree.
fn parse_value(line: &str) -> Result<Value, String> {
    // The vendored `from_str` needs a `Deserialize` target; a passthrough
    // newtype exposes the raw tree.
    struct Passthrough(Value);
    impl Deserialize for Passthrough {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(Passthrough(v.clone()))
        }
    }
    serde_json::from_str::<Passthrough>(line)
        .map(|p| p.0)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_obs::{EventKind, Layer};

    fn sample_info() -> DomainInfo {
        DomainInfo {
            name: "A72".to_string(),
            isa: Isa::ArmV8,
            max_frequency_hz: 1.6e9,
            frequency_hz: 1.2e9,
            voltage_v: 0.9,
            active_cores: 4,
            expected_resonance_hz: 1.0675e8,
        }
    }

    fn sample_obs() -> EmObservation {
        EmObservation {
            reading: EmReading {
                metric_dbm: -52.75,
                dominant_hz: 1.07e8,
            },
            loop_frequency_hz: 9.23e7,
            ipc: 1.37,
            max_droop_v: 0.043,
            peak_to_peak_v: 0.081,
            band: (5e7, 2e8),
            cached: false,
        }
    }

    #[test]
    fn header_round_trips() {
        let header = TraceHeader {
            backend: "live".to_string(),
            costs: SessionCosts::default(),
            domains: vec![sample_info()],
        };
        let line = header.to_line();
        match TraceLine::parse(&line).unwrap() {
            TraceLine::Header(back) => assert_eq!(back, header),
            TraceLine::Entry(_) => panic!("parsed header as entry"),
        }
    }

    #[test]
    fn entry_round_trips_with_awkward_floats() {
        // -0.0, a subnormal, an integer beyond 2^53, infinity: all bit
        // patterns the plain JSON number path would destroy.
        let entry = TraceEntry {
            key: "A72|idle|default|b...|n3|s00000000000000aa|c0".to_string(),
            payload: TracePayload::Observation(EmObservation {
                reading: EmReading {
                    metric_dbm: -0.0,
                    dominant_hz: 9007199254740995.0,
                },
                loop_frequency_hz: f64::MIN_POSITIVE / 2.0,
                ipc: f64::NEG_INFINITY,
                ..sample_obs()
            }),
            counters: vec![(CounterId::Measurements, 1), (CounterId::AnalyzerSweeps, 3)],
            hists: vec![(HistId::BandAmplitudeDbm, vec![-52.75, -0.0])],
            events: vec![Event {
                kind: EventKind::Span,
                name: "measure".to_string(),
                layer: Layer::Platform,
                t_s: 12.5,
                wall_s: None,
                fields: vec![("band_dbm".to_string(), -52.75)],
            }],
            elapsed_s: 1.8,
        };
        let line = entry.to_line();
        match TraceLine::parse(&line).unwrap() {
            TraceLine::Entry(back) => {
                assert_eq!(back, entry);
                let (obs, orig) = match (&back.payload, &entry.payload) {
                    (TracePayload::Observation(a), TracePayload::Observation(b)) => (a, b),
                    _ => panic!("payload kind changed"),
                };
                assert_eq!(
                    obs.reading.metric_dbm.to_bits(),
                    orig.reading.metric_dbm.to_bits(),
                    "-0.0 must survive"
                );
            }
            TraceLine::Header(_) => panic!("parsed entry as header"),
        }
    }

    #[test]
    fn failed_and_points_payloads_round_trip() {
        for payload in [
            TracePayload::Failed("frequency 0 outside (0, 1600000000]".to_string()),
            TracePayload::Points(vec![(5e7, -60.25), (1.07e8, -48.5)]),
        ] {
            let entry = TraceEntry {
                key: "combined|abc|s0|c0".to_string(),
                payload,
                counters: vec![],
                hists: vec![],
                events: vec![],
                elapsed_s: 0.0,
            };
            let line = entry.to_line();
            match TraceLine::parse(&line).unwrap() {
                TraceLine::Entry(back) => assert_eq!(back, entry),
                TraceLine::Header(_) => panic!("parsed entry as header"),
            }
        }
    }

    #[test]
    fn request_key_separates_every_input() {
        let kernel = emvolt_isa::kernels::padded_sweep_kernel(Isa::ArmV8, 7);
        let base = MeasureRequest {
            domain: "A72",
            load: Load::Kernel {
                kernel: &kernel,
                loaded_cores: 1,
            },
            freq_hz: None,
            band: BandSpec::Explicit {
                lo_hz: 5e7,
                hi_hz: 2e8,
            },
            samples: 3,
            seed: Some(42),
        };
        let k = request_key(&base, 1);
        assert_ne!(
            k,
            request_key(
                &MeasureRequest {
                    domain: "A53",
                    ..base
                },
                1
            )
        );
        assert_ne!(
            k,
            request_key(
                &MeasureRequest {
                    freq_hz: Some(1.0e9),
                    ..base
                },
                1
            )
        );
        assert_ne!(k, request_key(&MeasureRequest { samples: 4, ..base }, 1));
        assert_ne!(
            k,
            request_key(
                &MeasureRequest {
                    seed: Some(43),
                    ..base
                },
                1
            )
        );
        assert_ne!(k, request_key(&MeasureRequest { seed: None, ..base }, 1));
        assert_ne!(k, request_key(&base, 2));
        assert_eq!(k, request_key(&base.clone(), 1));
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // Any f64 bit pattern — NaNs, -0.0, subnormals, infinities,
            // integers beyond 2^53 — survives a serialize/parse cycle
            // exactly. NaN breaks struct equality, so the invariant is
            // checked on the re-serialized line instead.
            #[test]
            fn observation_entries_round_trip_any_f64_bits(
                bits in proptest::collection::vec(any::<u64>(), 9),
                cached in any::<bool>(),
                // Counter deltas use plain JSON numbers; the documented
                // contract only covers exactly-representable counts.
                count in 0u64..(1 << 53),
                hist_bits in proptest::collection::vec(any::<u64>(), 0..4),
            ) {
                let f = |i: usize| f64::from_bits(bits[i]);
                let entry = TraceEntry {
                    key: "A72|idle|default|b0:0|n3|rig|c0".to_string(),
                    payload: TracePayload::Observation(EmObservation {
                        reading: EmReading {
                            metric_dbm: f(0),
                            dominant_hz: f(1),
                        },
                        loop_frequency_hz: f(2),
                        ipc: f(3),
                        max_droop_v: f(4),
                        peak_to_peak_v: f(5),
                        band: (f(6), f(7)),
                        cached,
                    }),
                    counters: vec![(CounterId::Measurements, count)],
                    hists: vec![(
                        HistId::BandAmplitudeDbm,
                        hist_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                    )],
                    events: vec![],
                    elapsed_s: f(8),
                };
                let line = entry.to_line();
                let reparsed = match TraceLine::parse(&line) {
                    Ok(TraceLine::Entry(e)) => e,
                    other => panic!("bad parse: {other:?}"),
                };
                prop_assert_eq!(reparsed.to_line(), line);
            }

            #[test]
            fn points_entries_round_trip_any_f64_bits(
                pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8),
            ) {
                let entry = TraceEntry {
                    key: "combined|0|s0|c0".to_string(),
                    payload: TracePayload::Points(
                        pairs
                            .iter()
                            .map(|&(a, b)| (f64::from_bits(a), f64::from_bits(b)))
                            .collect(),
                    ),
                    counters: vec![],
                    hists: vec![],
                    events: vec![],
                    elapsed_s: 0.25,
                };
                let line = entry.to_line();
                let reparsed = match TraceLine::parse(&line) {
                    Ok(TraceLine::Entry(e)) => e,
                    other => panic!("bad parse: {other:?}"),
                };
                prop_assert_eq!(reparsed.to_line(), line);
            }
        }
    }

    #[test]
    fn combined_key_tracks_sources_and_seed() {
        let kernel = emvolt_isa::kernels::padded_sweep_kernel(Isa::ArmV8, 7);
        let loaded = [CombinedSource {
            domain: "A72",
            kernel: Some(&kernel),
            loaded_cores: 2,
        }];
        let idle = [CombinedSource {
            domain: "A72",
            kernel: None,
            loaded_cores: 2,
        }];
        let k = combined_key(&loaded, 5, 9);
        assert_ne!(k, combined_key(&idle, 5, 9));
        assert_ne!(k, combined_key(&loaded, 6, 9));
        assert_ne!(k, combined_key(&loaded, 5, 10));
        assert_eq!(k, combined_key(&loaded, 5, 9));
    }
}
