//! Request and observation types exchanged with a [`MeasurementBackend`].
//!
//! These are deliberately plain data: everything a backend needs to
//! reproduce a measurement is in the request, and everything a campaign
//! consumes is in the observation. That closure property is what makes
//! record/replay possible — a `(request, run-config)` pair keys a trace
//! entry, and the observation is the entry's payload.
//!
//! [`MeasurementBackend`]: crate::MeasurementBackend

use emvolt_isa::{Isa, Kernel};
use emvolt_platform::EmReading;

/// What executes on the domain while the analyzer listens.
#[derive(Debug, Clone, Copy)]
pub enum Load<'a> {
    /// A kernel replicated across `loaded_cores` cores (the remaining
    /// cores idle).
    Kernel {
        /// The instruction sequence to loop.
        kernel: &'a Kernel,
        /// How many cores execute it.
        loaded_cores: usize,
    },
    /// All cores idle — the baseline the paper subtracts to isolate
    /// code-dependent emissions.
    Idle,
}

impl<'a> Load<'a> {
    /// The kernel, if this load runs one.
    pub fn kernel(&self) -> Option<&'a Kernel> {
        match self {
            Load::Kernel { kernel, .. } => Some(kernel),
            Load::Idle => None,
        }
    }
}

/// The frequency band the analyzer integrates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandSpec {
    /// Fixed band edges in Hz.
    Explicit {
        /// Lower edge (Hz).
        lo_hz: f64,
        /// Upper edge (Hz).
        hi_hz: f64,
    },
    /// A window centred on the kernel's loop frequency, which the
    /// backend resolves after running the load (fast-sweep §5.3 tracks
    /// the loop tone as DVFS moves it). The lower edge is clamped to
    /// 1 MHz.
    AroundLoop {
        /// Half-width of the window (Hz).
        halfwidth_hz: f64,
    },
}

impl BandSpec {
    /// Resolves to concrete edges given the load's loop frequency.
    pub fn resolve(&self, loop_frequency_hz: f64) -> (f64, f64) {
        match *self {
            BandSpec::Explicit { lo_hz, hi_hz } => (lo_hz, hi_hz),
            BandSpec::AroundLoop { halfwidth_hz } => (
                (loop_frequency_hz - halfwidth_hz).max(1e6),
                loop_frequency_hz + halfwidth_hz,
            ),
        }
    }
}

/// One measurement request: run `load` on `domain` (optionally at an
/// overridden clock) and report the band amplitude from `samples`
/// analyzer sweeps.
#[derive(Debug, Clone, Copy)]
pub struct MeasureRequest<'a> {
    /// Name of the voltage domain to drive.
    pub domain: &'a str,
    /// What executes during the measurement.
    pub load: Load<'a>,
    /// Clock override in Hz; `None` keeps the domain's configured
    /// frequency.
    pub freq_hz: Option<f64>,
    /// Analyzer band.
    pub band: BandSpec,
    /// Analyzer sweeps to aggregate.
    pub samples: usize,
    /// Measurement-noise seed. Required on the parallel path; `None` on
    /// the serial path draws from the backend's stateful rig RNG.
    pub seed: Option<u64>,
}

/// Everything one measurement call observes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmObservation {
    /// The analyzer's band reading (amplitude + dominant tone).
    pub reading: EmReading,
    /// The kernel's loop frequency at the effective clock (0 for idle).
    pub loop_frequency_hz: f64,
    /// Instructions per cycle of the run (0 for idle).
    pub ipc: f64,
    /// Worst supply droop below nominal during the run (V).
    pub max_droop_v: f64,
    /// Peak-to-peak supply excursion during the run (V).
    pub peak_to_peak_v: f64,
    /// The concrete band edges the analyzer integrated (Hz).
    pub band: (f64, f64),
    /// Whether a caching layer served this without a fresh measurement.
    pub cached: bool,
}

/// Description of a domain a backend serves — the control state
/// campaigns plan against.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainInfo {
    /// Domain name (request routing key).
    pub name: String,
    /// Instruction set its cores execute.
    pub isa: Isa,
    /// DVFS ceiling (Hz).
    pub max_frequency_hz: f64,
    /// Currently configured clock (Hz).
    pub frequency_hz: f64,
    /// Supply voltage (V).
    pub voltage_v: f64,
    /// Cores not power-gated.
    pub active_cores: usize,
    /// PDN resonance estimate (Hz) from the domain's RLC parameters.
    pub expected_resonance_hz: f64,
}

/// One emitter in a combined multi-domain capture.
#[derive(Debug, Clone, Copy)]
pub struct CombinedSource<'a> {
    /// Domain to run.
    pub domain: &'a str,
    /// Kernel to execute, or `None` for idle.
    pub kernel: Option<&'a Kernel>,
    /// Cores loaded when a kernel is present.
    pub loaded_cores: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn around_loop_band_clamps_lower_edge() {
        let band = BandSpec::AroundLoop { halfwidth_hz: 30e6 };
        let (lo, hi) = band.resolve(20e6);
        assert_eq!(lo, 1e6);
        assert_eq!(hi, 50e6);
    }

    #[test]
    fn explicit_band_passes_through() {
        let band = BandSpec::Explicit {
            lo_hz: 50e6,
            hi_hz: 200e6,
        };
        assert_eq!(band.resolve(123e6), (50e6, 200e6));
    }
}
