//! Stable fingerprints for trace keys.
//!
//! Trace entries recorded on one machine must resolve on another, so the
//! keys use FNV-1a-64 over an explicit byte encoding — never
//! [`std::collections::hash_map::DefaultHasher`], whose output is
//! unspecified across releases. (The GA's in-process fitness cache keeps
//! its own `DefaultHasher`-based identity for seed derivation; that one
//! never leaves the process.)

use emvolt_isa::{Isa, Kernel, RegClass};
use emvolt_platform::RunConfig;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a-64 streaming hasher.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

fn isa_tag(isa: Isa) -> &'static [u8] {
    match isa {
        Isa::ArmV8 => b"armv8",
        Isa::X86_64 => b"x86_64",
    }
}

fn reg_tag(class: RegClass) -> u8 {
    match class {
        RegClass::Gpr => b'g',
        RegClass::Fpr => b'f',
    }
}

/// Content fingerprint of a kernel: ISA, then per instruction the op
/// *name* (stable across op-table reorderings), destination and source
/// registers, and memory slot.
pub fn kernel_fingerprint(kernel: &Kernel) -> u64 {
    let arch = kernel.arch();
    let mut h = Fnv::new();
    h.write(isa_tag(arch.isa()));
    for instr in kernel.body() {
        h.write(arch.op(instr.op).name.as_bytes());
        h.write(&[
            reg_tag(instr.dst.class),
            instr.dst.index,
            reg_tag(instr.srcs[0].class),
            instr.srcs[0].index,
            reg_tag(instr.srcs[1].class),
            instr.srcs[1].index,
        ]);
        h.write(&instr.mem_slot.to_le_bytes());
    }
    h.finish()
}

/// Fingerprint of the physics fidelity a campaign pinned. Folded into
/// every trace key so a recording cannot silently replay against a
/// different solver configuration.
///
/// Hashes only the explicit fidelity fields — host-descriptive metadata
/// like [`RunConfig::simd`] is deliberately excluded, because results
/// are bit-identical across SIMD dispatch levels and a recording must
/// replay on a host with a different vector width.
pub fn run_config_fingerprint(config: &RunConfig) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(config.pdn_dt.to_bits());
    h.write_u64(config.pdn_window.to_bits());
    h.write_u64(config.pdn_warmup.to_bits());
    h.write(config.kernel.as_str().as_bytes());
    h.write(config.spectral.as_str().as_bytes());
    let sim = &config.sim;
    h.write(format!("{sim:?}").as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use emvolt_isa::kernels::padded_sweep_kernel;

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = padded_sweep_kernel(Isa::ArmV8, 17);
        let b = padded_sweep_kernel(Isa::ArmV8, 17);
        let c = padded_sweep_kernel(Isa::ArmV8, 18);
        assert_eq!(kernel_fingerprint(&a), kernel_fingerprint(&b));
        assert_ne!(kernel_fingerprint(&a), kernel_fingerprint(&c));
    }

    #[test]
    fn fingerprint_distinguishes_isa() {
        let arm = padded_sweep_kernel(Isa::ArmV8, 9);
        let x86 = padded_sweep_kernel(Isa::X86_64, 9);
        assert_ne!(kernel_fingerprint(&arm), kernel_fingerprint(&x86));
    }

    #[test]
    fn run_config_fingerprint_tracks_fidelity() {
        let fast = RunConfig::fast();
        let default = RunConfig::default();
        assert_eq!(
            run_config_fingerprint(&fast),
            run_config_fingerprint(&RunConfig::fast())
        );
        assert_ne!(
            run_config_fingerprint(&fast),
            run_config_fingerprint(&default)
        );
    }

    /// Solver-kernel and spectral-path selections are part of the pinned
    /// fidelity: a recording must not replay against a different
    /// measurement pipeline.
    #[test]
    fn run_config_fingerprint_tracks_solver_selections() {
        let base = RunConfig::fast();
        let mut lu = RunConfig::fast();
        lu.kernel = emvolt_platform::KernelChoice::Lu;
        let mut fft = RunConfig::fast();
        fft.spectral = emvolt_platform::SpectralChoice::FullFft;
        assert_ne!(run_config_fingerprint(&base), run_config_fingerprint(&lu));
        assert_ne!(run_config_fingerprint(&base), run_config_fingerprint(&fft));
        assert_ne!(run_config_fingerprint(&lu), run_config_fingerprint(&fft));
    }

    /// The SIMD level a config was built on is descriptive metadata, not
    /// pinned fidelity: recordings replay bit-identically on hosts with a
    /// different vector width, so the field must not enter the key.
    #[test]
    fn run_config_fingerprint_ignores_simd_metadata() {
        let base = RunConfig::fast();
        let mut other = RunConfig::fast();
        other.simd = "some-other-isa-level";
        assert_ne!(base.simd, other.simd);
        assert_eq!(
            run_config_fingerprint(&base),
            run_config_fingerprint(&other)
        );
    }

    #[test]
    fn fnv_vector() {
        // Published FNV-1a-64 test vector.
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
