//! CLI-facing backend selection: `live`, `record:PATH`, `replay:PATH`.

use crate::{BackendError, LiveBackend, MeasurementBackend, RecordBackend, ReplayBackend};
use emvolt_platform::{EmBench, RunConfig, VoltageDomain};
use std::path::PathBuf;
use std::str::FromStr;

/// Parsed `--backend` argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendSpec {
    /// Full simulated measurement chain.
    Live,
    /// Live chain plus a JSONL trace recording at the given path.
    Record(PathBuf),
    /// Serve a recorded trace; the simulation chain is never invoked.
    Replay(PathBuf),
}

impl FromStr for BackendSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once(':') {
            None if s == "live" => Ok(BackendSpec::Live),
            Some(("record", path)) if !path.is_empty() => {
                Ok(BackendSpec::Record(PathBuf::from(path)))
            }
            Some(("replay", path)) if !path.is_empty() => {
                Ok(BackendSpec::Replay(PathBuf::from(path)))
            }
            _ => Err(format!(
                "bad backend `{s}`: expected live, record:PATH or replay:PATH"
            )),
        }
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendSpec::Live => write!(f, "live"),
            BackendSpec::Record(p) => write!(f, "record:{}", p.display()),
            BackendSpec::Replay(p) => write!(f, "replay:{}", p.display()),
        }
    }
}

impl BackendSpec {
    /// Builds the backend this spec names. `domains`, `bench` and
    /// `run_config` feed the live chain; replay ignores them and answers
    /// from its trace alone.
    ///
    /// # Errors
    ///
    /// [`BackendError::Store`] when the record target cannot be created
    /// or the replay trace cannot be read.
    pub fn build(
        &self,
        domains: Vec<VoltageDomain>,
        bench: EmBench,
        run_config: RunConfig,
    ) -> Result<Box<dyn MeasurementBackend>, BackendError> {
        match self {
            BackendSpec::Live => Ok(Box::new(LiveBackend::new(domains, bench, run_config))),
            BackendSpec::Record(path) => Ok(Box::new(RecordBackend::create(
                LiveBackend::new(domains, bench, run_config),
                path,
            )?)),
            BackendSpec::Replay(path) => Ok(Box::new(ReplayBackend::open(path)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_forms() {
        assert_eq!("live".parse::<BackendSpec>().unwrap(), BackendSpec::Live);
        assert_eq!(
            "record:/tmp/t.jsonl".parse::<BackendSpec>().unwrap(),
            BackendSpec::Record(PathBuf::from("/tmp/t.jsonl"))
        );
        assert_eq!(
            "replay:trace.jsonl".parse::<BackendSpec>().unwrap(),
            BackendSpec::Replay(PathBuf::from("trace.jsonl"))
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in ["", "liv", "record:", "replay:", "tape:/x", "live:extra"] {
            assert!(bad.parse::<BackendSpec>().is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn display_round_trips() {
        for spec in [
            BackendSpec::Live,
            BackendSpec::Record(PathBuf::from("a.jsonl")),
            BackendSpec::Replay(PathBuf::from("b.jsonl")),
        ] {
            assert_eq!(spec.to_string().parse::<BackendSpec>().unwrap(), spec);
        }
    }
}
