//! The live backend: the full simulated measurement chain.
//!
//! This is the pre-trait measurement path, re-homed behind
//! [`MeasurementBackend`]: per-worker [`EvalSlot`] pools keep warm
//! [`DomainRunner`]s (netlist + LU factorizations built once), the
//! parallel path measures through a [`SharedEmBench`] with explicit
//! seeds, and the serial path drives the bench's own stateful RNG.
//! Seeded campaigns through this backend are bit-identical to the code
//! they replaced.

use crate::request::{BandSpec, CombinedSource, DomainInfo, EmObservation, Load, MeasureRequest};
use crate::{BackendError, MeasurementBackend};
use emvolt_inst::SweepReading;
use emvolt_obs::{CounterId, Telemetry};
use emvolt_platform::{
    BatchTransientScratch, DomainError, DomainRun, DomainRunner, EmBench, EmReading,
    MeasureScratch, RunConfig, SessionCosts, SharedEmBench, VoltageDomain,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One worker's reusable evaluation state: a warm [`DomainRunner`]
/// (netlist + LU factorizations already built), a recycled [`DomainRun`]
/// and the spectrum [`MeasureScratch`]. Holding all three together means
/// a steady-state evaluation allocates nothing transient-sized anywhere
/// in the kernel → current → PDN → spectrum → metric chain.
#[derive(Debug)]
pub struct EvalSlot {
    /// The warm per-worker runner.
    pub runner: DomainRunner,
    /// Recycled run buffers.
    pub run: DomainRun,
    /// Recycled spectrum/measurement scratch.
    pub measure: MeasureScratch,
    /// Recycled per-lane run buffers for the batched path.
    pub runs: Vec<DomainRun>,
    /// Recycled lock-step transient state for the batched path.
    pub batch: BatchTransientScratch,
}

impl EvalSlot {
    /// Builds a cold slot for `domain` (pays netlist construction and LU
    /// factorization).
    ///
    /// # Errors
    ///
    /// Propagates netlist/factorization failures.
    pub fn new(
        domain: &VoltageDomain,
        run_config: &RunConfig,
        telemetry: &Telemetry,
    ) -> Result<Self, DomainError> {
        let runner = DomainRunner::new_with(domain, run_config.clone(), telemetry.clone())?;
        let mut measure = MeasureScratch::new();
        measure.set_telemetry(telemetry.clone());
        Ok(EvalSlot {
            runner,
            run: DomainRun::empty(),
            measure,
            runs: Vec::new(),
            batch: BatchTransientScratch::new(),
        })
    }
}

/// Coordinator-side state for one domain: a warm runner for serial
/// measurements (fast sweep, post-campaign re-measurement).
#[derive(Debug)]
struct SerialSlot {
    runner: DomainRunner,
    run: DomainRun,
}

/// [`MeasurementBackend`] over the full simulation chain.
#[derive(Debug)]
pub struct LiveBackend {
    domains: Vec<VoltageDomain>,
    run_config: RunConfig,
    costs: SessionCosts,
    bench: EmBench,
    shared: SharedEmBench,
    /// Per-domain checkout pools for the parallel path. At steady state
    /// each holds one slot per worker thread, so per-individual setup is
    /// paid `threads` times per campaign instead of
    /// `population x generations` times.
    pools: Vec<Mutex<Vec<EvalSlot>>>,
    serial: Vec<Option<SerialSlot>>,
}

impl LiveBackend {
    /// Builds a backend over `domains` measuring through `bench`. The
    /// run configuration's spectral-path selection is applied to the
    /// bench (and its shared half), so `RunConfig::spectral` is
    /// authoritative for every measurement through this backend.
    pub fn new(domains: Vec<VoltageDomain>, mut bench: EmBench, run_config: RunConfig) -> Self {
        bench.set_spectral(run_config.spectral);
        let shared = bench.share();
        let n = domains.len();
        LiveBackend {
            domains,
            run_config,
            costs: SessionCosts::default(),
            bench,
            shared,
            pools: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            serial: (0..n).map(|_| None).collect(),
        }
    }

    /// Single-domain convenience constructor.
    pub fn single(domain: VoltageDomain, bench: EmBench, run_config: RunConfig) -> Self {
        LiveBackend::new(vec![domain], bench, run_config)
    }

    /// Overrides the session cost model.
    #[must_use]
    pub fn with_costs(mut self, costs: SessionCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Direct access to a served domain.
    pub fn domain(&self, name: &str) -> Option<&VoltageDomain> {
        self.domains.iter().find(|d| d.name() == name)
    }

    /// Mutable access to a served domain (DVFS, power gating). Warm
    /// runner state for that domain is dropped, since pooled runners
    /// carry clones of the old control settings.
    pub fn domain_mut(&mut self, name: &str) -> Option<&mut VoltageDomain> {
        let idx = self.domains.iter().position(|d| d.name() == name)?;
        self.pools[idx].lock().clear();
        self.serial[idx] = None;
        Some(&mut self.domains[idx])
    }

    /// Consumes the backend, folding outstanding shared-analyzer time
    /// back into the bench and returning it.
    pub fn into_bench(mut self) -> EmBench {
        self.bench.absorb_elapsed(&self.shared);
        self.bench
    }

    fn index(&self, name: &str) -> Result<usize, BackendError> {
        self.domains
            .iter()
            .position(|d| d.name() == name)
            .ok_or_else(|| BackendError::UnknownDomain(name.to_string()))
    }

    /// Points the runner at the request's effective clock. Skipped when
    /// the slot is already there — `Cpu::simulate` is `&self`, so an
    /// up-to-date runner needs no rebuild.
    fn retune(
        slot_runner: &mut DomainRunner,
        domain: &VoltageDomain,
        freq_hz: Option<f64>,
    ) -> Result<(), BackendError> {
        let target = freq_hz.unwrap_or_else(|| domain.frequency());
        if slot_runner.domain().frequency() != target {
            slot_runner.try_set_frequency(target)?;
        }
        Ok(())
    }

    fn run_load(
        slot_runner: &mut DomainRunner,
        run: &mut DomainRun,
        load: &Load<'_>,
    ) -> Result<(), DomainError> {
        match *load {
            Load::Kernel {
                kernel,
                loaded_cores,
            } => slot_runner.run_into(kernel, loaded_cores, run),
            Load::Idle => {
                *run = slot_runner.run_idle()?;
                Ok(())
            }
        }
    }

    fn observation(run: &DomainRun, reading: EmReading, band: (f64, f64)) -> EmObservation {
        EmObservation {
            reading,
            loop_frequency_hz: run.loop_frequency,
            ipc: run.ipc,
            max_droop_v: run.max_droop(),
            peak_to_peak_v: run.peak_to_peak(),
            band,
            cached: false,
        }
    }
}

impl MeasurementBackend for LiveBackend {
    fn label(&self) -> &'static str {
        "live"
    }

    fn domains(&self) -> Vec<DomainInfo> {
        self.domains
            .iter()
            .map(|d| DomainInfo {
                name: d.name().to_string(),
                isa: d.core_model().isa,
                max_frequency_hz: d.max_frequency(),
                frequency_hz: d.frequency(),
                voltage_v: d.voltage(),
                active_cores: d.active_cores(),
                expected_resonance_hz: d.expected_resonance_hz(),
            })
            .collect()
    }

    fn configure_run(&mut self, config: &RunConfig) -> Result<(), BackendError> {
        if *config != self.run_config {
            self.run_config = config.clone();
            // Fold outstanding shared-analyzer time back before the
            // shared half is rebuilt with the new spectral selection.
            self.bench.absorb_elapsed(&self.shared);
            self.bench.set_spectral(config.spectral);
            self.shared = self.bench.share();
            for pool in &self.pools {
                pool.lock().clear();
            }
            for slot in &mut self.serial {
                *slot = None;
            }
        }
        Ok(())
    }

    fn measure(
        &self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        let idx = self.index(req.domain)?;
        let seed = req.seed.ok_or(BackendError::SeedRequired)?;
        let domain = &self.domains[idx];
        // Checkout accounting matches the old RunnerPool: every call is a
        // checkout, a miss means a cold slot had to be built.
        telemetry.count(CounterId::ScratchCheckouts, 1);
        let mut slot = match self.pools[idx].lock().pop() {
            Some(s) => s,
            None => {
                telemetry.count(CounterId::ScratchMisses, 1);
                EvalSlot::new(domain, &self.run_config, telemetry)?
            }
        };
        slot.runner.set_telemetry(telemetry.clone());
        slot.measure.set_telemetry(telemetry.clone());
        let result = (|| {
            Self::retune(&mut slot.runner, domain, req.freq_hz)?;
            Self::run_load(&mut slot.runner, &mut slot.run, &req.load)?;
            let band = req.band.resolve(slot.run.loop_frequency);
            let reading = self.shared.measure_in_band_seeded_with(
                &slot.run,
                band.0,
                band.1,
                req.samples,
                seed,
                &mut slot.measure,
            );
            Ok(Self::observation(&slot.run, reading, band))
        })();
        // The slot goes back whatever happened — a failed run leaves the
        // runner's plan and netlist untouched.
        self.pools[idx].lock().push(slot);
        result
    }

    /// Amortized batch: when every request targets the same domain with
    /// the same explicit band, clock, sweep count and a per-lane seed,
    /// one warm slot serves the whole group through the lane-major chain
    /// (one lock-step transient, one multi-lane Goertzel pass, shared
    /// channel transfer). Reading `l` is bit-identical to the serial
    /// `measure(&reqs[l], ..)` call it replaces, and trace-visible
    /// counter totals are lane-count-invariant (`ScratchCheckouts` is
    /// still charged once per request). Groups that mix domains, bands
    /// or load shapes — or whose cached plan is LU-only — fall back to
    /// the serial loop.
    fn measure_batch(
        &self,
        reqs: &[MeasureRequest<'_>],
        telemetry: &Telemetry,
    ) -> Vec<Result<EmObservation, BackendError>> {
        let serial =
            |reqs: &[MeasureRequest<'_>]| reqs.iter().map(|r| self.measure(r, telemetry)).collect();
        let Some(first) = reqs.first() else {
            return Vec::new();
        };
        let band = match first.band {
            BandSpec::Explicit { lo_hz, hi_hz } => (lo_hz, hi_hz),
            BandSpec::AroundLoop { .. } => return serial(reqs),
        };
        let uniform = reqs.iter().all(|r| {
            r.domain == first.domain
                && r.freq_hz == first.freq_hz
                && r.samples == first.samples
                && r.seed.is_some()
                && matches!(r.load, Load::Kernel { .. })
                && matches!(
                    r.band,
                    BandSpec::Explicit { lo_hz, hi_hz } if (lo_hz, hi_hz) == band
                )
        });
        if !uniform || reqs.len() == 1 {
            return serial(reqs);
        }
        let Ok(idx) = self.index(first.domain) else {
            return serial(reqs);
        };
        let domain = &self.domains[idx];
        let active = domain.active_cores();
        if reqs
            .iter()
            .any(|r| matches!(r.load, Load::Kernel { loaded_cores, .. } if loaded_cores > active))
        {
            // Per-lane core-count validation has per-lane outcomes; let
            // the serial loop report them individually.
            return serial(reqs);
        }

        let mut slot = match self.pools[idx].lock().pop() {
            Some(s) => s,
            None => {
                telemetry.count(CounterId::ScratchMisses, 1);
                match EvalSlot::new(domain, &self.run_config, telemetry) {
                    Ok(s) => s,
                    Err(e) => {
                        let msg = e.to_string();
                        return reqs
                            .iter()
                            .map(|_| Err(BackendError::Domain(DomainError::Backend(msg.clone()))))
                            .collect();
                    }
                }
            }
        };
        if !slot.runner.supports_batch() {
            self.pools[idx].lock().push(slot);
            return serial(reqs);
        }
        // One checkout per request keeps the trace-visible totals
        // identical to the serial loop at any lane count.
        telemetry.count(CounterId::ScratchCheckouts, reqs.len() as u64);
        slot.runner.set_telemetry(telemetry.clone());
        slot.measure.set_telemetry(telemetry.clone());
        slot.batch.set_telemetry(telemetry.clone());
        let entries: Vec<(&emvolt_isa::Kernel, usize)> = reqs
            .iter()
            .map(|r| match r.load {
                Load::Kernel {
                    kernel,
                    loaded_cores,
                } => (kernel, loaded_cores),
                Load::Idle => unreachable!("uniformity check rejected idle loads"),
            })
            .collect();
        let seeds: Vec<u64> = reqs
            .iter()
            .map(|r| r.seed.expect("uniformity check required seeds"))
            .collect();
        let results: Result<Vec<Result<EmObservation, BackendError>>, BackendError> = (|| {
            Self::retune(&mut slot.runner, domain, first.freq_hz)?;
            if slot.runs.len() < reqs.len() {
                slot.runs.resize_with(reqs.len(), DomainRun::empty);
            }
            let readings = slot.runner.run_measure_batch_into(
                &entries,
                band.0,
                band.1,
                first.samples,
                &seeds,
                &self.shared,
                &mut slot.runs,
                &mut slot.batch,
                &mut slot.measure,
            )?;
            Ok(slot
                .runs
                .iter()
                .zip(readings)
                .map(|(run, reading)| Ok(Self::observation(run, reading, band)))
                .collect::<Vec<_>>())
        })();
        self.pools[idx].lock().push(slot);
        match results {
            Ok(observations) => observations,
            Err(e) => {
                let msg = e.to_string();
                reqs.iter()
                    .map(|_| Err(BackendError::Domain(DomainError::Backend(msg.clone()))))
                    .collect()
            }
        }
    }

    fn measure_serial(
        &mut self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        let idx = self.index(req.domain)?;
        self.bench.absorb_elapsed(&self.shared);
        self.bench.set_telemetry(telemetry.clone());
        if self.serial[idx].is_none() {
            // Prefer a warm pooled runner (the post-campaign path reuses a
            // worker's slot exactly as the old code did); build cold
            // otherwise.
            let slot = match self.pools[idx].lock().pop() {
                Some(s) => SerialSlot {
                    runner: s.runner,
                    run: s.run,
                },
                None => SerialSlot {
                    runner: DomainRunner::new_with(
                        &self.domains[idx],
                        self.run_config.clone(),
                        telemetry.clone(),
                    )?,
                    run: DomainRun::empty(),
                },
            };
            self.serial[idx] = Some(slot);
        }
        let domain = &self.domains[idx];
        let slot = self.serial[idx]
            .as_mut()
            .expect("serial slot just installed above");
        slot.runner.set_telemetry(telemetry.clone());
        Self::retune(&mut slot.runner, domain, req.freq_hz)?;
        Self::run_load(&mut slot.runner, &mut slot.run, &req.load)?;
        let band = req.band.resolve(slot.run.loop_frequency);
        let reading = match req.seed {
            // The serial rig: the bench's own RNG advances call over call.
            None => self
                .bench
                .measure_in_band(&slot.run, band.0, band.1, req.samples),
            Some(seed) => {
                let mut scratch = MeasureScratch::new();
                scratch.set_telemetry(telemetry.clone());
                self.shared.measure_in_band_seeded_with(
                    &slot.run,
                    band.0,
                    band.1,
                    req.samples,
                    seed,
                    &mut scratch,
                )
            }
        };
        Ok(Self::observation(&slot.run, reading, band))
    }

    fn capture_combined(
        &mut self,
        sources: &[CombinedSource<'_>],
        seed: u64,
        telemetry: &Telemetry,
    ) -> Result<SweepReading, BackendError> {
        self.bench.set_telemetry(telemetry.clone());
        let mut runs = Vec::with_capacity(sources.len());
        for src in sources {
            let idx = self.index(src.domain)?;
            if self.serial[idx].is_none() {
                self.serial[idx] = Some(SerialSlot {
                    runner: DomainRunner::new_with(
                        &self.domains[idx],
                        self.run_config.clone(),
                        telemetry.clone(),
                    )?,
                    run: DomainRun::empty(),
                });
            }
            let domain = &self.domains[idx];
            let slot = self.serial[idx]
                .as_mut()
                .expect("serial slot just installed above");
            slot.runner.set_telemetry(telemetry.clone());
            Self::retune(&mut slot.runner, domain, None)?;
            let load = match src.kernel {
                Some(kernel) => Load::Kernel {
                    kernel,
                    loaded_cores: src.loaded_cores,
                },
                None => Load::Idle,
            };
            Self::run_load(&mut slot.runner, &mut slot.run, &load)?;
            runs.push(slot.run.clone());
        }
        let refs: Vec<&DomainRun> = runs.iter().collect();
        let rx = self.bench.received_spectrum_multi(&refs);
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(self.bench.analyzer.sweep(&rx, &mut rng))
    }

    fn elapsed_seconds(&self) -> f64 {
        self.bench.elapsed() + self.shared.elapsed()
    }

    fn costs(&self) -> SessionCosts {
        self.costs
    }

    fn rig_state(&self) -> Vec<(String, String)> {
        let words = self.bench.rng_state();
        vec![
            (
                "rig_rng".to_string(),
                words
                    .iter()
                    .map(|w| format!("{w:016x}"))
                    .collect::<Vec<_>>()
                    .join(":"),
            ),
            (
                "elapsed".to_string(),
                format!("{:016x}", self.elapsed_seconds().to_bits()),
            ),
        ]
    }

    fn restore_rig_state(&mut self, state: &[(String, String)]) -> Result<(), BackendError> {
        // Fold any outstanding shared-analyzer time in first so the
        // restored absolute total lands on the bench alone.
        self.bench.absorb_elapsed(&self.shared);
        for (key, value) in state {
            match key.as_str() {
                "rig_rng" => {
                    let words = value
                        .split(':')
                        .map(|w| u64::from_str_radix(w, 16))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| {
                            BackendError::Store(format!("bad rig_rng word in `{value}`: {e}"))
                        })?;
                    let words: [u64; 4] = words.try_into().map_err(|w: Vec<u64>| {
                        BackendError::Store(format!("rig_rng holds {} words, expected 4", w.len()))
                    })?;
                    self.bench.set_rng_state(words);
                }
                "elapsed" => {
                    let bits = u64::from_str_radix(value, 16).map_err(|e| {
                        BackendError::Store(format!("bad elapsed bits `{value}`: {e}"))
                    })?;
                    self.bench.restore_elapsed(f64::from_bits(bits));
                }
                other => {
                    return Err(BackendError::Store(format!(
                        "live backend knows no rig-state key `{other}`"
                    )))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::BandSpec;
    use emvolt_cpu::CoreModel;
    use emvolt_isa::{kernels::padded_sweep_kernel, Isa};
    use emvolt_platform::{a72_pdn, RESONANCE_BAND};

    fn a72() -> VoltageDomain {
        VoltageDomain::new("A72", CoreModel::cortex_a72(), a72_pdn(), 1.2e9)
    }

    fn backend() -> LiveBackend {
        LiveBackend::single(a72(), EmBench::new(11), RunConfig::fast())
    }

    #[test]
    fn seeded_measure_matches_the_direct_chain() {
        let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
        let be = backend();
        let req = MeasureRequest {
            domain: "A72",
            load: Load::Kernel {
                kernel: &kernel,
                loaded_cores: 1,
            },
            freq_hz: None,
            band: BandSpec::Explicit {
                lo_hz: RESONANCE_BAND.0,
                hi_hz: RESONANCE_BAND.1,
            },
            samples: 3,
            seed: Some(42),
        };
        let tel = Telemetry::noop();
        let obs = be.measure(&req, &tel).unwrap();

        // The same measurement, spelled out by hand.
        let domain = a72();
        let mut runner = DomainRunner::new(&domain, RunConfig::fast()).unwrap();
        let run = runner.run(&kernel, 1).unwrap();
        let bench = EmBench::new(11);
        let shared = bench.share();
        let mut scratch = MeasureScratch::new();
        let expect = shared.measure_in_band_seeded_with(
            &run,
            RESONANCE_BAND.0,
            RESONANCE_BAND.1,
            3,
            42,
            &mut scratch,
        );
        assert_eq!(obs.reading, expect);
        assert_eq!(obs.loop_frequency_hz, run.loop_frequency);
        assert!(!obs.cached);
    }

    #[test]
    fn measure_requires_a_seed() {
        let kernel = padded_sweep_kernel(Isa::ArmV8, 3);
        let be = backend();
        let req = MeasureRequest {
            domain: "A72",
            load: Load::Kernel {
                kernel: &kernel,
                loaded_cores: 1,
            },
            freq_hz: None,
            band: BandSpec::Explicit {
                lo_hz: RESONANCE_BAND.0,
                hi_hz: RESONANCE_BAND.1,
            },
            samples: 1,
            seed: None,
        };
        assert!(matches!(
            be.measure(&req, &Telemetry::noop()),
            Err(BackendError::SeedRequired)
        ));
    }

    #[test]
    fn unknown_domain_is_a_typed_error() {
        let mut be = backend();
        let req = MeasureRequest {
            domain: "GPU",
            load: Load::Idle,
            freq_hz: None,
            band: BandSpec::Explicit {
                lo_hz: 5e7,
                hi_hz: 2e8,
            },
            samples: 1,
            seed: Some(1),
        };
        assert!(matches!(
            be.measure(&req, &Telemetry::noop()),
            Err(BackendError::UnknownDomain(_))
        ));
        assert!(matches!(
            be.measure_serial(&req, &Telemetry::noop()),
            Err(BackendError::UnknownDomain(_))
        ));
    }

    #[test]
    fn serial_rig_advances_like_a_plain_bench() {
        let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
        let mut be = backend();
        let req = MeasureRequest {
            domain: "A72",
            load: Load::Kernel {
                kernel: &kernel,
                loaded_cores: 1,
            },
            freq_hz: None,
            band: BandSpec::Explicit {
                lo_hz: RESONANCE_BAND.0,
                hi_hz: RESONANCE_BAND.1,
            },
            samples: 2,
            seed: None,
        };
        let tel = Telemetry::noop();
        let first = be.measure_serial(&req, &tel).unwrap();
        let second = be.measure_serial(&req, &tel).unwrap();

        let domain = a72();
        let mut runner = DomainRunner::new(&domain, RunConfig::fast()).unwrap();
        let run = runner.run(&kernel, 1).unwrap();
        let mut bench = EmBench::new(11);
        let e1 = bench.measure_in_band(&run, RESONANCE_BAND.0, RESONANCE_BAND.1, 2);
        let e2 = bench.measure_in_band(&run, RESONANCE_BAND.0, RESONANCE_BAND.1, 2);
        assert_eq!(first.reading, e1);
        assert_eq!(second.reading, e2);
        assert_ne!(first.reading, second.reading, "rig RNG must advance");
    }

    #[test]
    fn dvfs_override_moves_the_loop_frequency() {
        let kernel = emvolt_isa::kernels::sweep_kernel(Isa::ArmV8);
        let mut be = backend();
        let tel = Telemetry::noop();
        let at = |be: &mut LiveBackend, hz: Option<f64>| {
            be.measure_serial(
                &MeasureRequest {
                    domain: "A72",
                    load: Load::Kernel {
                        kernel: &kernel,
                        loaded_cores: 1,
                    },
                    freq_hz: hz,
                    band: BandSpec::AroundLoop { halfwidth_hz: 3e6 },
                    samples: 1,
                    seed: Some(9),
                },
                &tel,
            )
            .unwrap()
        };
        let full = at(&mut be, Some(1.2e9));
        let half = at(&mut be, Some(0.6e9));
        let ratio = full.loop_frequency_hz / half.loop_frequency_hz;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
        // And with no override the runner returns to the domain default.
        let default = at(&mut be, None);
        assert_eq!(default.loop_frequency_hz, full.loop_frequency_hz);
    }

    #[test]
    fn combined_capture_matches_direct_multi_domain_sweep() {
        let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
        let mut be = LiveBackend::single(a72(), EmBench::new(6), RunConfig::fast());
        let reading = be
            .capture_combined(
                &[CombinedSource {
                    domain: "A72",
                    kernel: Some(&kernel),
                    loaded_cores: 2,
                }],
                0x515,
                &Telemetry::noop(),
            )
            .unwrap();

        let domain = a72();
        let run = domain.run(&kernel, 2, &RunConfig::fast()).unwrap();
        let mut bench = EmBench::new(6);
        let rx = bench.received_spectrum_multi(&[&run]);
        let mut rng = StdRng::seed_from_u64(0x515);
        let expect = bench.analyzer.sweep(&rx, &mut rng);
        assert_eq!(reading.points, expect.points);
    }

    /// The batched path must return exactly what the default serial loop
    /// over `measure` would — observation bits, lane order and
    /// trace-visible checkout counters alike.
    #[test]
    fn batched_measure_matches_the_serial_loop_bit_for_bit() {
        let kernels: Vec<_> = [3usize, 17, 9]
            .iter()
            .map(|&p| padded_sweep_kernel(Isa::ArmV8, p))
            .collect();
        let reqs: Vec<MeasureRequest<'_>> = kernels
            .iter()
            .enumerate()
            .map(|(i, kernel)| MeasureRequest {
                domain: "A72",
                load: Load::Kernel {
                    kernel,
                    loaded_cores: 1 + i % 2,
                },
                freq_hz: None,
                band: BandSpec::Explicit {
                    lo_hz: RESONANCE_BAND.0,
                    hi_hz: RESONANCE_BAND.1,
                },
                samples: 3,
                seed: Some(40 + i as u64),
            })
            .collect();
        let tel = Telemetry::noop();

        let batched_be = backend();
        let batched = batched_be.measure_batch(&reqs, &tel);

        let serial_be = backend();
        for (req, got) in reqs.iter().zip(&batched) {
            let want = serial_be.measure(req, &tel).unwrap();
            let got = got.as_ref().expect("batched lane failed");
            assert_eq!(
                want.reading.metric_dbm.to_bits(),
                got.reading.metric_dbm.to_bits()
            );
            assert_eq!(
                want.reading.dominant_hz.to_bits(),
                got.reading.dominant_hz.to_bits()
            );
            assert_eq!(want.loop_frequency_hz, got.loop_frequency_hz);
            assert_eq!(want.ipc, got.ipc);
            assert_eq!(want.max_droop_v, got.max_droop_v);
            assert_eq!(want.peak_to_peak_v, got.peak_to_peak_v);
        }
        assert_eq!(
            batched_be.elapsed_seconds().to_bits(),
            serial_be.elapsed_seconds().to_bits()
        );
    }

    /// An LU-only plan cannot run the lock-step transient: the batch call
    /// silently serves the group through the serial loop instead.
    #[test]
    fn batched_measure_falls_back_to_serial_for_lu_only_plans() {
        use emvolt_platform::KernelChoice;
        let kernel = padded_sweep_kernel(Isa::ArmV8, 17);
        let mut cfg = RunConfig::fast();
        cfg.kernel = KernelChoice::Lu;
        let be = LiveBackend::single(a72(), EmBench::new(11), cfg.clone());
        let reqs: Vec<MeasureRequest<'_>> = (0..2)
            .map(|i| MeasureRequest {
                domain: "A72",
                load: Load::Kernel {
                    kernel: &kernel,
                    loaded_cores: 1,
                },
                freq_hz: None,
                band: BandSpec::Explicit {
                    lo_hz: RESONANCE_BAND.0,
                    hi_hz: RESONANCE_BAND.1,
                },
                samples: 2,
                seed: Some(70 + i),
            })
            .collect();
        let tel = Telemetry::noop();
        let batched = be.measure_batch(&reqs, &tel);
        let serial_be = LiveBackend::single(a72(), EmBench::new(11), cfg);
        for (req, got) in reqs.iter().zip(&batched) {
            let want = serial_be.measure(req, &tel).unwrap();
            assert_eq!(want.reading, got.as_ref().unwrap().reading);
        }
    }

    #[test]
    fn configure_run_drops_warm_state_only_on_change() {
        let mut be = backend();
        let kernel = padded_sweep_kernel(Isa::ArmV8, 5);
        let req = MeasureRequest {
            domain: "A72",
            load: Load::Kernel {
                kernel: &kernel,
                loaded_cores: 1,
            },
            freq_hz: None,
            band: BandSpec::Explicit {
                lo_hz: 5e7,
                hi_hz: 2e8,
            },
            samples: 1,
            seed: Some(3),
        };
        let tel = Telemetry::noop();
        be.measure(&req, &tel).unwrap();
        assert_eq!(be.pools[0].lock().len(), 1);
        be.configure_run(&RunConfig::fast()).unwrap();
        assert_eq!(be.pools[0].lock().len(), 1, "same config keeps the pool");
        be.configure_run(&RunConfig::default()).unwrap();
        assert_eq!(be.pools[0].lock().len(), 0, "new fidelity drops warm slots");
    }
}
