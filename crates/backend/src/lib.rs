//! # emvolt-backend
//!
//! Pluggable measurement backends behind one trait.
//!
//! The paper's campaigns (GA virus search §5.1, fast resonance sweep
//! §5.3, multi-domain monitoring §6.1) are all defined against one
//! opaque observable: *the amplitude the spectrum analyzer reports for
//! this kernel on this domain at this DVFS point*. [`MeasurementBackend`]
//! captures exactly that surface, so the algorithms in `emvolt-core`
//! never name the circuit solver directly. Three implementations ship:
//!
//! - [`LiveBackend`] — the full simulated measurement chain (runner
//!   pools + [`SharedEmBench`](emvolt_platform::SharedEmBench) seeded
//!   measurements). Seeded campaigns through it are bit-identical to the
//!   pre-trait code path.
//! - [`RecordBackend`] / [`ReplayBackend`] — a JSONL trace store keyed
//!   by `(kernel fingerprint, domain, frequency, band, samples, seed)`.
//!   Recording wraps any inner backend and captures each call's
//!   observation, counter deltas, histogram values and telemetry events;
//!   replaying serves the same campaign **without ever invoking the
//!   transient solver**, reproducing outputs and telemetry traces
//!   byte-for-byte.
//! - [`CachingBackend`] — memoizes any inner backend by request key,
//!   subsuming the fitness-cache logic campaigns previously hand-rolled.
//!
//! ## Determinism contract
//!
//! Every backend must satisfy two rules so campaigns stay reproducible:
//!
//! 1. `measure` (the parallel path) requires an explicit seed and must
//!    be callable concurrently from worker threads; any state it touches
//!    is order-independent (pools, atomic counters).
//! 2. Telemetry flows through the handle *passed per call*: quiet worker
//!    handles only accumulate counters/histograms, full coordinator
//!    handles also emit events. Backends forward — never invent —
//!    emissions, so traces are byte-identical across backends and thread
//!    counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod fingerprint;
mod live;
mod record;
mod replay;
mod request;
mod select;
mod trace;

pub use cache::CachingBackend;
pub use fingerprint::{kernel_fingerprint, run_config_fingerprint};
pub use live::{EvalSlot, LiveBackend};
pub use record::RecordBackend;
pub use replay::ReplayBackend;
pub use request::{BandSpec, CombinedSource, DomainInfo, EmObservation, Load, MeasureRequest};
pub use select::BackendSpec;
pub use trace::{combined_key, request_key, TRACE_FORMAT_VERSION};

use emvolt_inst::SweepReading;
use emvolt_obs::Telemetry;
use emvolt_platform::{DomainError, RunConfig, SessionCosts};
use std::fmt;

/// Error from a measurement backend.
#[derive(Debug)]
pub enum BackendError {
    /// The underlying simulation failed (live backends only).
    Domain(DomainError),
    /// The request named a domain the backend does not serve.
    UnknownDomain(String),
    /// [`MeasurementBackend::measure`] was called without a seed; the
    /// parallel path has no per-backend RNG to fall back on.
    SeedRequired,
    /// Replay found no recorded entry for the request key.
    MissingRecording(String),
    /// Replay found the entry, but the recorded call had failed; the
    /// string is the recorded error.
    RecordedFailure(String),
    /// A caching backend hit a memoized *failure* for this key (the
    /// original error is preserved). Callers that score failures at a
    /// floor treat this as a cache hit, not a fresh measurement.
    CachedFailure(String),
    /// Trace-store I/O or parse failure.
    Store(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Domain(e) => write!(f, "{e}"),
            BackendError::UnknownDomain(name) => write!(f, "backend serves no domain `{name}`"),
            BackendError::SeedRequired => {
                write!(f, "parallel measure() requires an explicit seed")
            }
            BackendError::MissingRecording(key) => {
                write!(f, "no recorded measurement for key `{key}`")
            }
            BackendError::RecordedFailure(err) => write!(f, "recorded call failed: {err}"),
            BackendError::CachedFailure(err) => write!(f, "cached call had failed: {err}"),
            BackendError::Store(msg) => write!(f, "trace store error: {msg}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<DomainError> for BackendError {
    fn from(e: DomainError) -> Self {
        BackendError::Domain(e)
    }
}

impl BackendError {
    /// Collapses into the platform error type callers already handle:
    /// simulation errors pass through, everything else becomes
    /// [`DomainError::Backend`].
    pub fn into_domain_error(self) -> DomainError {
        match self {
            BackendError::Domain(e) => e,
            other => DomainError::Backend(other.to_string()),
        }
    }
}

/// The observable surface a measurement campaign needs.
///
/// One backend instance serves one or more named voltage domains and is
/// used for the length of a campaign: [`configure_run`] pins the physics
/// fidelity, [`measure`] serves the parallel seeded fitness path,
/// [`measure_serial`] the coordinator's stateful-rig path, and
/// [`finish`] flushes any store.
///
/// [`configure_run`]: MeasurementBackend::configure_run
/// [`measure`]: MeasurementBackend::measure
/// [`measure_serial`]: MeasurementBackend::measure_serial
/// [`finish`]: MeasurementBackend::finish
pub trait MeasurementBackend: Send + Sync {
    /// Short tag for logs and trace headers: `"live"`, `"record"`,
    /// `"replay"`, `"cache"`.
    fn label(&self) -> &'static str;

    /// The domains this backend can measure, with the control state a
    /// campaign plans against (max frequency, gating, expected
    /// resonance). Replay backends answer from the trace header.
    fn domains(&self) -> Vec<DomainInfo>;

    /// Looks up one domain by name.
    fn domain_info(&self, name: &str) -> Option<DomainInfo> {
        self.domains().into_iter().find(|d| d.name == name)
    }

    /// Pins the physics fidelity for subsequent calls. Campaigns call
    /// this once up front; live backends drop warm runner state when the
    /// configuration actually changes, and trace keys incorporate a
    /// fingerprint of it so recordings can't be replayed against the
    /// wrong fidelity.
    ///
    /// # Errors
    ///
    /// Backend-specific; live configuration itself cannot fail.
    fn configure_run(&mut self, config: &RunConfig) -> Result<(), BackendError>;

    /// Runs the request's load and measures the band amplitude with the
    /// request's seed. This is the GA hot path: callable concurrently
    /// from worker threads, it requires `req.seed` to be set and charges
    /// all instrumentation to `telemetry` (hand workers a
    /// [`Telemetry::quiet`] clone).
    ///
    /// # Errors
    ///
    /// [`BackendError::SeedRequired`] without a seed; otherwise
    /// backend-specific (simulation failure, missing recording, ...).
    fn measure(
        &self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError>;

    /// Batched counterpart of [`MeasurementBackend::measure`]: serves
    /// `reqs` in order, one result per request. The contract is strict —
    /// every implementation returns results bit-identical to the serial
    /// loop over [`MeasurementBackend::measure`] the default provides;
    /// live backends override this to amortize the physics across lanes
    /// (one lock-step transient, one multi-lane Goertzel pass) without
    /// changing a single bit of any reading.
    fn measure_batch(
        &self,
        reqs: &[MeasureRequest<'_>],
        telemetry: &Telemetry,
    ) -> Vec<Result<EmObservation, BackendError>> {
        reqs.iter()
            .map(|req| self.measure(req, telemetry))
            .collect()
    }

    /// Coordinator-thread measurement. With `req.seed == None` the
    /// backend's stateful measurement rig (the analyzer's own RNG)
    /// draws the noise — successive calls advance that rig exactly like
    /// the pre-trait serial flow did. With a seed it behaves like
    /// [`MeasurementBackend::measure`].
    ///
    /// # Errors
    ///
    /// Backend-specific.
    fn measure_serial(
        &mut self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError>;

    /// Runs every source and captures one combined analyzer sweep of
    /// their superimposed emissions (multi-domain monitoring, §6.1).
    /// Sweep noise is drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Backend-specific.
    fn capture_combined(
        &mut self,
        sources: &[CombinedSource<'_>],
        seed: u64,
        telemetry: &Telemetry,
    ) -> Result<SweepReading, BackendError>;

    /// Accumulated analyzer occupancy in seconds (sweep time the
    /// physical instrument would have spent).
    fn elapsed_seconds(&self) -> f64;

    /// The session cost model (upload/compile/launch/sample/teardown)
    /// campaigns use to advance their simulated clock.
    fn costs(&self) -> SessionCosts;

    /// Flushes any store. Idempotent; recorded traces are incomplete
    /// until this runs (campaigns call it before returning).
    ///
    /// # Errors
    ///
    /// Backend-specific (store I/O).
    fn finish(&mut self) -> Result<(), BackendError> {
        Ok(())
    }

    /// Opaque key/value pairs capturing the backend's mutable rig state
    /// (measurement-noise RNG words, analyzer occupancy) for campaign
    /// checkpoints. Backends with no such state return an empty list.
    /// Values follow the trace discipline: floats as 16-hex-digit
    /// `f64::to_bits` strings.
    fn rig_state(&self) -> Vec<(String, String)> {
        Vec::new()
    }

    /// Restores state captured by [`rig_state`](Self::rig_state).
    /// Unknown keys are an error (a checkpoint from a different backend
    /// must not resume silently); backends with no state accept only an
    /// empty list.
    ///
    /// # Errors
    ///
    /// [`BackendError`] naming the unusable key or value.
    fn restore_rig_state(&mut self, state: &[(String, String)]) -> Result<(), BackendError> {
        if let Some((key, _)) = state.first() {
            return Err(BackendError::Store(format!(
                "backend `{}` holds no rig state; checkpoint key `{key}` cannot be restored",
                self.label()
            )));
        }
        Ok(())
    }
}

/// Mutable references forward, so campaign functions taking
/// `&mut B where B: MeasurementBackend + ?Sized` compose with wrappers
/// like [`CachingBackend`] borrowing the same backend.
impl<B: MeasurementBackend + ?Sized> MeasurementBackend for &mut B {
    fn label(&self) -> &'static str {
        (**self).label()
    }

    fn domains(&self) -> Vec<DomainInfo> {
        (**self).domains()
    }

    fn domain_info(&self, name: &str) -> Option<DomainInfo> {
        (**self).domain_info(name)
    }

    fn configure_run(&mut self, config: &RunConfig) -> Result<(), BackendError> {
        (**self).configure_run(config)
    }

    fn measure(
        &self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        (**self).measure(req, telemetry)
    }

    fn measure_batch(
        &self,
        reqs: &[MeasureRequest<'_>],
        telemetry: &Telemetry,
    ) -> Vec<Result<EmObservation, BackendError>> {
        (**self).measure_batch(reqs, telemetry)
    }

    fn measure_serial(
        &mut self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        (**self).measure_serial(req, telemetry)
    }

    fn capture_combined(
        &mut self,
        sources: &[CombinedSource<'_>],
        seed: u64,
        telemetry: &Telemetry,
    ) -> Result<SweepReading, BackendError> {
        (**self).capture_combined(sources, seed, telemetry)
    }

    fn elapsed_seconds(&self) -> f64 {
        (**self).elapsed_seconds()
    }

    fn costs(&self) -> SessionCosts {
        (**self).costs()
    }

    fn finish(&mut self) -> Result<(), BackendError> {
        (**self).finish()
    }

    fn rig_state(&self) -> Vec<(String, String)> {
        (**self).rig_state()
    }

    fn restore_rig_state(&mut self, state: &[(String, String)]) -> Result<(), BackendError> {
        (**self).restore_rig_state(state)
    }
}
