//! Replay backend: serve a recorded campaign without the circuit solver.
//!
//! This module deliberately imports nothing from the simulation chain —
//! no domains, no runners, no PDN, no transient solver. Every answer
//! comes from the JSONL trace a [`RecordBackend`](crate::RecordBackend)
//! wrote: the observation (bit-exact, hex-encoded floats), the counter
//! deltas, histogram values and telemetry events the live call charged.
//! Replaying a recorded campaign therefore reproduces its outputs and
//! telemetry byte-for-byte at a fraction of the cost.
//!
//! Entries are keyed by request. Seeded requests are order-independent;
//! unseeded (`rig`) requests replay in recording order per key, which
//! reproduces the stateful analyzer-RNG sequence of the serial path.

use crate::request::{CombinedSource, DomainInfo, EmObservation, MeasureRequest};
use crate::trace::{combined_key, request_key, TraceHeader, TraceLine, TracePayload};
use crate::{fingerprint::run_config_fingerprint, BackendError, MeasurementBackend};
use emvolt_inst::SweepReading;
use emvolt_obs::CounterId;
use emvolt_obs::{Event, HistId, Telemetry};
use emvolt_platform::{RunConfig, SessionCosts};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// One stored call, reduced to what replay serves.
#[derive(Debug, Clone)]
struct StoredCall {
    payload: TracePayload,
    counters: Vec<(CounterId, u64)>,
    hists: Vec<(HistId, Vec<f64>)>,
    events: Vec<Event>,
    elapsed_s: f64,
}

/// [`MeasurementBackend`] serving a recorded trace.
#[derive(Debug)]
pub struct ReplayBackend {
    header: TraceHeader,
    entries: Mutex<HashMap<String, VecDeque<StoredCall>>>,
    /// Calls actually popped per key (the keep-last clone rule means a key
    /// can serve more often than it was recorded without popping). This is
    /// the replay cursor a campaign checkpoint must restore so in-order
    /// `rig` streams resume where they left off.
    served: Mutex<HashMap<String, u64>>,
    elapsed: Mutex<f64>,
    cfg_fp: AtomicU64,
}

impl ReplayBackend {
    /// Loads a trace written by [`RecordBackend`](crate::RecordBackend).
    ///
    /// # Errors
    ///
    /// [`BackendError::Store`] on I/O failure, a missing or
    /// wrong-version header, or a malformed line.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, BackendError> {
        let path = path.as_ref();
        let file = File::open(path)
            .map_err(|e| BackendError::Store(format!("open {}: {e}", path.display())))?;
        let mut header = None;
        let mut entries: HashMap<String, VecDeque<StoredCall>> = HashMap::new();
        for (lineno, line) in BufReader::new(file).lines().enumerate() {
            let line =
                line.map_err(|e| BackendError::Store(format!("read line {}: {e}", lineno + 1)))?;
            if line.trim().is_empty() {
                continue;
            }
            let parsed = TraceLine::parse(&line)
                .map_err(|e| BackendError::Store(format!("line {}: {e}", lineno + 1)))?;
            match parsed {
                TraceLine::Header(h) => {
                    if header.replace(h).is_some() {
                        return Err(BackendError::Store(format!(
                            "line {}: duplicate header",
                            lineno + 1
                        )));
                    }
                }
                TraceLine::Entry(e) => {
                    if header.is_none() {
                        return Err(BackendError::Store("trace entry before header".to_string()));
                    }
                    entries
                        .entry(e.key.clone())
                        .or_default()
                        .push_back(StoredCall {
                            payload: e.payload,
                            counters: e.counters,
                            hists: e.hists,
                            events: e.events,
                            elapsed_s: e.elapsed_s,
                        });
                }
            }
        }
        let header =
            header.ok_or_else(|| BackendError::Store("trace has no header line".to_string()))?;
        Ok(ReplayBackend {
            header,
            entries: Mutex::new(entries),
            served: Mutex::new(HashMap::new()),
            elapsed: Mutex::new(0.0),
            cfg_fp: AtomicU64::new(0),
        })
    }

    /// Total recorded calls available for lookup.
    pub fn len(&self) -> usize {
        self.entries.lock().values().map(VecDeque::len).sum()
    }

    /// Whether the trace holds no calls.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which backend recorded the trace (`"live"`, `"cache"`, ...).
    pub fn recorded_by(&self) -> &str {
        &self.header.backend
    }

    /// Pops the next stored call for `key`, keeping a clone of the final
    /// one so a key can be served more often than it was recorded (the
    /// last call's result repeats — matching how a seeded measurement is
    /// a pure function of its key).
    fn serve(&self, key: &str, tel: &Telemetry) -> Result<StoredCall, BackendError> {
        let call = {
            let mut entries = self.entries.lock();
            let queue = entries
                .get_mut(key)
                .ok_or_else(|| BackendError::MissingRecording(key.to_string()))?;
            if queue.len() == 1 {
                queue.front().cloned().expect("len checked above")
            } else {
                *self.served.lock().entry(key.to_string()).or_insert(0) += 1;
                queue.pop_front().expect("len checked above")
            }
        };
        for &(id, n) in &call.counters {
            tel.count(id, n);
        }
        for (id, vs) in &call.hists {
            for &v in vs {
                tel.record_value(*id, v);
            }
        }
        for event in &call.events {
            tel.emit_event(event);
        }
        *self.elapsed.lock() += call.elapsed_s;
        Ok(call)
    }

    fn observation_of(call: StoredCall, key: &str) -> Result<EmObservation, BackendError> {
        match call.payload {
            TracePayload::Observation(obs) => Ok(obs),
            TracePayload::Failed(err) => Err(BackendError::RecordedFailure(err)),
            TracePayload::Points(_) => Err(BackendError::Store(format!(
                "entry `{key}` is a combined capture, not a measurement"
            ))),
        }
    }
}

impl MeasurementBackend for ReplayBackend {
    fn label(&self) -> &'static str {
        "replay"
    }

    fn domains(&self) -> Vec<DomainInfo> {
        self.header.domains.clone()
    }

    fn configure_run(&mut self, config: &RunConfig) -> Result<(), BackendError> {
        self.cfg_fp
            .store(run_config_fingerprint(config), Ordering::Relaxed);
        Ok(())
    }

    fn measure(
        &self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        if req.seed.is_none() {
            return Err(BackendError::SeedRequired);
        }
        let key = request_key(req, self.cfg_fp.load(Ordering::Relaxed));
        let call = self.serve(&key, telemetry)?;
        Self::observation_of(call, &key)
    }

    fn measure_serial(
        &mut self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        let key = request_key(req, self.cfg_fp.load(Ordering::Relaxed));
        let call = self.serve(&key, telemetry)?;
        Self::observation_of(call, &key)
    }

    fn capture_combined(
        &mut self,
        sources: &[CombinedSource<'_>],
        seed: u64,
        telemetry: &Telemetry,
    ) -> Result<SweepReading, BackendError> {
        let key = combined_key(sources, seed, self.cfg_fp.load(Ordering::Relaxed));
        let call = self.serve(&key, telemetry)?;
        match call.payload {
            TracePayload::Points(points) => Ok(SweepReading { points }),
            TracePayload::Failed(err) => Err(BackendError::RecordedFailure(err)),
            TracePayload::Observation(_) => Err(BackendError::Store(format!(
                "entry `{key}` is a measurement, not a combined capture"
            ))),
        }
    }

    fn elapsed_seconds(&self) -> f64 {
        *self.elapsed.lock()
    }

    fn costs(&self) -> SessionCosts {
        self.header.costs
    }

    fn rig_state(&self) -> Vec<(String, String)> {
        let served = self.served.lock();
        let mut keys: Vec<_> = served.iter().collect();
        keys.sort();
        let mut state: Vec<(String, String)> = keys
            .into_iter()
            .map(|(k, n)| (format!("served:{k}"), n.to_string()))
            .collect();
        state.push((
            "elapsed".to_string(),
            format!("{:016x}", self.elapsed.lock().to_bits()),
        ));
        state
    }

    fn restore_rig_state(&mut self, state: &[(String, String)]) -> Result<(), BackendError> {
        for (key, value) in state {
            if let Some(entry_key) = key.strip_prefix("served:") {
                let n: u64 = value.parse().map_err(|e| {
                    BackendError::Store(format!(
                        "bad served count `{value}` for `{entry_key}`: {e}"
                    ))
                })?;
                let mut entries = self.entries.lock();
                let queue = entries
                    .get_mut(entry_key)
                    .ok_or_else(|| BackendError::MissingRecording(entry_key.to_string()))?;
                for _ in 0..n {
                    if queue.len() > 1 {
                        queue.pop_front();
                    }
                }
                *self.served.lock().entry(entry_key.to_string()).or_insert(0) = n;
            } else if key == "elapsed" {
                let bits = u64::from_str_radix(value, 16)
                    .map_err(|e| BackendError::Store(format!("bad elapsed bits `{value}`: {e}")))?;
                *self.elapsed.lock() = f64::from_bits(bits);
            } else {
                return Err(BackendError::Store(format!(
                    "replay backend knows no rig-state key `{key}`"
                )));
            }
        }
        Ok(())
    }
}
