//! Recording wrapper: measure live, persist every call to a JSONL trace.
//!
//! Each backend call runs against a fresh *capture* [`Telemetry`] handle,
//! so the call's counter deltas, histogram values and events are known
//! exactly even when worker threads interleave. Everything captured is
//! (a) forwarded to the caller's handle — quiet worker handles drop the
//! events, full handles emit them, exactly as the live path would — and
//! (b) stored in the trace entry, so replay can forward the identical
//! emissions later.
//!
//! Parallel `measure` calls append entries in completion order, so two
//! recordings of one campaign at different thread counts may order lines
//! differently; replay keys entries by request, not by line number, and
//! only same-key (serial `rig`) entries rely on relative order — those
//! are written from the coordinator thread, in call order.

use crate::fingerprint::run_config_fingerprint;
use crate::request::{CombinedSource, DomainInfo, EmObservation, MeasureRequest};
use crate::trace::{combined_key, request_key, TraceEntry, TraceHeader, TracePayload};
use crate::{BackendError, MeasurementBackend};
use emvolt_inst::SweepReading;
use emvolt_obs::{CounterId, Event, HistId, Recorder, Telemetry};
use emvolt_platform::{RunConfig, SessionCosts};
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// In-memory recorder behind the per-call capture handle.
#[derive(Debug, Default)]
struct CaptureRecorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder for CaptureRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// What one inner call charged, observed through a capture handle.
struct Captured {
    counters: Vec<(CounterId, u64)>,
    hists: Vec<(HistId, Vec<f64>)>,
    events: Vec<Event>,
}

/// Runs `f` against a fresh capture handle, forwards everything captured
/// to `tel`, and returns the capture for storage.
fn capture_call<T>(tel: &Telemetry, f: impl FnOnce(&Telemetry) -> T) -> (T, Captured) {
    let recorder = Arc::new(CaptureRecorder::default());
    let cap = Telemetry::new(recorder.clone());
    cap.set_sim_time(tel.sim_time());
    let out = f(&cap);
    let counters: Vec<(CounterId, u64)> = CounterId::ALL
        .into_iter()
        .filter_map(|id| {
            let n = cap.counter(id);
            (n > 0).then_some((id, n))
        })
        .collect();
    let hists: Vec<(HistId, Vec<f64>)> = HistId::ALL
        .into_iter()
        .filter_map(|id| {
            let vs = cap.hist_values(id);
            (!vs.is_empty()).then_some((id, vs))
        })
        .collect();
    let events = std::mem::take(&mut *recorder.events.lock());
    for &(id, n) in &counters {
        tel.count(id, n);
    }
    for (id, vs) in &hists {
        for &v in vs {
            tel.record_value(*id, v);
        }
    }
    for event in &events {
        tel.emit_event(event);
    }
    (
        out,
        Captured {
            counters,
            hists,
            events,
        },
    )
}

/// [`MeasurementBackend`] wrapper that persists every call of an inner
/// backend to a JSONL trace for later [`ReplayBackend`](crate::ReplayBackend) use.
#[derive(Debug)]
pub struct RecordBackend<B> {
    inner: B,
    writer: Mutex<BufWriter<File>>,
    write_error: Mutex<Option<String>>,
    cfg_fp: AtomicU64,
}

impl<B: MeasurementBackend> RecordBackend<B> {
    /// Wraps `inner`, truncating/creating the trace at `path` and writing
    /// the header line (inner label, cost model, domain descriptions).
    ///
    /// # Errors
    ///
    /// [`BackendError::Store`] on file-creation or header-write failure.
    pub fn create(inner: B, path: impl AsRef<Path>) -> Result<Self, BackendError> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| BackendError::Store(format!("create {}: {e}", path.display())))?;
        let mut writer = BufWriter::new(file);
        let header = TraceHeader {
            backend: inner.label().to_string(),
            costs: inner.costs(),
            domains: inner.domains(),
        };
        writeln!(writer, "{}", header.to_line())
            .map_err(|e| BackendError::Store(format!("write header: {e}")))?;
        Ok(RecordBackend {
            inner,
            writer: Mutex::new(writer),
            write_error: Mutex::new(None),
            cfg_fp: AtomicU64::new(0),
        })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps, dropping the trace writer (flushing it first).
    pub fn into_inner(self) -> B {
        let _ = self.writer.lock().flush();
        self.inner
    }

    /// Appends one entry; failures are remembered and surfaced by
    /// [`MeasurementBackend::finish`] so the (possibly parallel) hot path
    /// never aborts mid-campaign on disk trouble.
    fn append(&self, key: String, payload: TracePayload, captured: Captured, elapsed_s: f64) {
        let entry = TraceEntry {
            key,
            payload,
            counters: captured.counters,
            hists: captured.hists,
            events: captured.events,
            elapsed_s,
        };
        if let Err(e) = writeln!(self.writer.lock(), "{}", entry.to_line()) {
            self.write_error
                .lock()
                .get_or_insert_with(|| format!("append entry: {e}"));
        }
    }

    fn payload_of(result: &Result<EmObservation, BackendError>) -> TracePayload {
        match result {
            Ok(obs) => TracePayload::Observation(*obs),
            Err(e) => TracePayload::Failed(e.to_string()),
        }
    }

    /// Analyzer occupancy attributed to one parallel call: sweeps charged
    /// times the per-sample cost. Exact for the stock analyzer (0.6 s per
    /// sweep); an approximation if the cost model and analyzer sweep time
    /// are configured apart.
    fn elapsed_estimate(&self, captured: &Captured) -> f64 {
        let sweeps = captured
            .counters
            .iter()
            .find(|(id, _)| *id == CounterId::AnalyzerSweeps)
            .map_or(0, |&(_, n)| n);
        sweeps as f64 * self.inner.costs().sample_s
    }
}

impl<B: MeasurementBackend> MeasurementBackend for RecordBackend<B> {
    fn label(&self) -> &'static str {
        "record"
    }

    fn domains(&self) -> Vec<DomainInfo> {
        self.inner.domains()
    }

    fn configure_run(&mut self, config: &RunConfig) -> Result<(), BackendError> {
        self.cfg_fp
            .store(run_config_fingerprint(config), Ordering::Relaxed);
        self.inner.configure_run(config)
    }

    fn measure(
        &self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        let key = request_key(req, self.cfg_fp.load(Ordering::Relaxed));
        let (result, captured) = capture_call(telemetry, |cap| self.inner.measure(req, cap));
        let elapsed = self.elapsed_estimate(&captured);
        self.append(key, Self::payload_of(&result), captured, elapsed);
        result
    }

    fn measure_serial(
        &mut self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        let key = request_key(req, self.cfg_fp.load(Ordering::Relaxed));
        let before = self.inner.elapsed_seconds();
        let (result, captured) = capture_call(telemetry, |cap| self.inner.measure_serial(req, cap));
        let elapsed = self.inner.elapsed_seconds() - before;
        self.append(key, Self::payload_of(&result), captured, elapsed);
        result
    }

    fn capture_combined(
        &mut self,
        sources: &[CombinedSource<'_>],
        seed: u64,
        telemetry: &Telemetry,
    ) -> Result<SweepReading, BackendError> {
        let key = combined_key(sources, seed, self.cfg_fp.load(Ordering::Relaxed));
        let before = self.inner.elapsed_seconds();
        let (result, captured) = capture_call(telemetry, |cap| {
            self.inner.capture_combined(sources, seed, cap)
        });
        let elapsed = self.inner.elapsed_seconds() - before;
        let payload = match &result {
            Ok(reading) => TracePayload::Points(reading.points.clone()),
            Err(e) => TracePayload::Failed(e.to_string()),
        };
        self.append(key, payload, captured, elapsed);
        result
    }

    fn elapsed_seconds(&self) -> f64 {
        self.inner.elapsed_seconds()
    }

    fn costs(&self) -> SessionCosts {
        self.inner.costs()
    }

    fn rig_state(&self) -> Vec<(String, String)> {
        self.inner.rig_state()
    }

    fn restore_rig_state(&mut self, state: &[(String, String)]) -> Result<(), BackendError> {
        self.inner.restore_rig_state(state)
    }

    fn finish(&mut self) -> Result<(), BackendError> {
        self.inner.finish()?;
        self.writer
            .lock()
            .flush()
            .map_err(|e| BackendError::Store(format!("flush trace: {e}")))?;
        match self.write_error.lock().take() {
            Some(e) => Err(BackendError::Store(e)),
            None => Ok(()),
        }
    }
}
