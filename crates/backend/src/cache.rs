//! Memoizing wrapper: any inner backend, cached by request key.
//!
//! This subsumes the fitness cache campaigns used to hand-roll: a
//! request already answered in this campaign is served from memory — no
//! simulation, no analyzer time — and charged to the
//! `fitness_cache_hits` counter. Failures are cached too (as
//! [`BackendError::CachedFailure`]), so a kernel that cannot simulate is
//! not retried per generation, matching the old behavior of caching the
//! noise-floor score.
//!
//! Only the parallel seeded path caches: serial (`rig`) measurements are
//! stateful by design and combined captures are one-shot, so both pass
//! through.

use crate::request::{CombinedSource, DomainInfo, EmObservation, MeasureRequest};
use crate::trace::request_key;
use crate::{BackendError, MeasurementBackend};
use emvolt_inst::SweepReading;
use emvolt_obs::{CounterId, Telemetry};
use emvolt_platform::{RunConfig, SessionCosts};
use parking_lot::Mutex;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum CachedResult {
    Hit(EmObservation),
    Failure(String),
}

/// [`MeasurementBackend`] wrapper memoizing seeded measurements.
#[derive(Debug)]
pub struct CachingBackend<B> {
    inner: B,
    entries: Mutex<HashMap<String, CachedResult>>,
}

impl<B: MeasurementBackend> CachingBackend<B> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: B) -> Self {
        CachingBackend {
            inner,
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwraps, dropping the cache.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Cached entries so far.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<B: MeasurementBackend> MeasurementBackend for CachingBackend<B> {
    fn label(&self) -> &'static str {
        "cache"
    }

    fn domains(&self) -> Vec<DomainInfo> {
        self.inner.domains()
    }

    fn configure_run(&mut self, config: &RunConfig) -> Result<(), BackendError> {
        // A fidelity change invalidates every memoized reading.
        self.entries.lock().clear();
        self.inner.configure_run(config)
    }

    fn measure(
        &self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        // The run-config fingerprint is omitted from cache keys: the
        // cache is cleared on configure_run, so one generation of keys
        // never spans two fidelities.
        let key = request_key(req, 0);
        if let Some(cached) = self.entries.lock().get(&key).cloned() {
            telemetry.count(CounterId::FitnessCacheHits, 1);
            return match cached {
                CachedResult::Hit(obs) => Ok(EmObservation {
                    cached: true,
                    ..obs
                }),
                CachedResult::Failure(err) => Err(BackendError::CachedFailure(err)),
            };
        }
        telemetry.count(CounterId::FitnessCacheMisses, 1);
        let result = self.inner.measure(req, telemetry);
        let stored = match &result {
            Ok(obs) => CachedResult::Hit(*obs),
            Err(e) => CachedResult::Failure(e.to_string()),
        };
        self.entries.lock().insert(key, stored);
        result
    }

    fn measure_serial(
        &mut self,
        req: &MeasureRequest<'_>,
        telemetry: &Telemetry,
    ) -> Result<EmObservation, BackendError> {
        self.inner.measure_serial(req, telemetry)
    }

    fn capture_combined(
        &mut self,
        sources: &[CombinedSource<'_>],
        seed: u64,
        telemetry: &Telemetry,
    ) -> Result<SweepReading, BackendError> {
        self.inner.capture_combined(sources, seed, telemetry)
    }

    fn elapsed_seconds(&self) -> f64 {
        self.inner.elapsed_seconds()
    }

    fn costs(&self) -> SessionCosts {
        self.inner.costs()
    }

    fn rig_state(&self) -> Vec<(String, String)> {
        self.inner.rig_state()
    }

    fn restore_rig_state(&mut self, state: &[(String, String)]) -> Result<(), BackendError> {
        self.inner.restore_rig_state(state)
    }

    fn finish(&mut self) -> Result<(), BackendError> {
        self.inner.finish()
    }
}
